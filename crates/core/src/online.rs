//! Online GMM adaptation under workload drift: the [`AdaptiveEngine`].
//!
//! This is the GMM-aware half of the online refit loop (the model-agnostic
//! substrate — plan, telemetry, reservoir, ring, detector — lives in
//! `icgmm_cache::adapt`). An [`AdaptiveEngine`] wraps a
//! [`GmmPolicyEngine`] and, at fixed *global trace positions* (multiples
//! of [`icgmm_cache::AdaptPlan::check_interval`]):
//!
//! 1. evaluates the windowed mean log-likelihood of the most recent
//!    observations under the live scorer (a direct table read — the
//!    engine's Algorithm 1 clock and inference counters are untouched),
//! 2. feeds it to the [`icgmm_cache::DriftDetector`], and
//! 3. on a declared drift, refits from the seeded reservoir buffer via
//!    [`icgmm_gmm::IncrementalEm`] (one E/M pass, not a cold fit) and
//!    publishes the new mixture with [`GmmPolicyEngine::swap_scorer`] —
//!    an `Arc` pointer swap, so replay never blocks on training.
//!
//! ## Determinism
//!
//! Checks fire immediately before the first observed record whose global
//! position reaches the next `check_interval` boundary. The windowed
//! entry points segment their batched kernel calls at those boundaries,
//! so swap points depend only on global positions — never on how a caller
//! chunks windows. Consequences, all property-enforced in
//! `tests/adapt_equivalence.rs`:
//!
//! * an adaptive run is a pure function of `(trace seed, adapt seed)` at
//!   every shard count (shards partition the record stream, so the
//!   per-shard buffers — and therefore the refits — legitimately differ
//!   *across* shard counts, never across reruns or routings);
//! * serving and offline sharded replay stay bit-identical at equal
//!   shard counts, whatever windows ingestion happens to cut;
//! * with the drift trigger held off (`drift_drop = ∞`) the scored
//!   values are bit-identical to a static-scorer run.
//!
//! The admission threshold stays fixed across refits: it was calibrated
//! against the offline score distribution, and re-calibrating it online
//! would couple admission decisions to the reservoir contents — the
//! score *ordering* is what drift repair needs.

use icgmm_cache::{
    AdaptPlan, AdaptSink, AdaptStats, DriftDetector, ObsSample, RecentRing, Reservoir, ScoreSource,
};
use icgmm_gmm::{EmConfig, Gmm, GmmError, IncrementalEm, Vec2};
use icgmm_trace::{PreprocessConfig, TimestampTransformer, TraceRecord};

use crate::engine::GmmPolicyEngine;

/// Fewest reservoir samples worth refitting from; smaller buffers count a
/// refit failure and keep the live generation.
const MIN_REFIT_SAMPLES: usize = 8;

/// Stateless per-shard stream derivation, so the trainer and reservoir
/// draw from disjoint, reproducible streams of one `(adapt seed, shard)`
/// pair (same finalizer construction as the cache crate's fault rolls).
fn salt(seed: u64, shard: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(shard.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`GmmPolicyEngine`] wrapped with the drift-triggered online refit
/// loop. Implements [`ScoreSource`] with the exact same observation
/// contract, so it drops into every replay path (streaming, windowed,
/// sharded, served) the plain engine does.
#[derive(Debug)]
pub struct AdaptiveEngine {
    engine: GmmPolicyEngine,
    trainer: IncrementalEm,
    preprocess: PreprocessConfig,
    check_interval: u64,
    reservoir: Reservoir,
    ring: RecentRing,
    detector: DriftDetector,
    sink: AdaptSink,
    /// Base of the per-generation reservoir seed stream (stream 2 of the
    /// `(adapt seed, shard)` pair; generation g restarts on sub-stream g).
    reservoir_salt: u64,
    stats: AdaptStats,
    /// Global trace position (own observations + foreign-shard gaps) of
    /// the *next* record to observe.
    pos: u64,
    /// Next check boundary; checks fire while `pos >= next_check`.
    next_check: u64,
}

impl AdaptiveEngine {
    /// Wraps `engine` with the refit loop described by `plan`.
    ///
    /// `gmm` seeds the incremental trainer (the offline-trained mixture —
    /// generation 0); `em` supplies the M-step hyper-parameters. The
    /// trainer is pinned to one E-step thread so refits are deterministic
    /// whatever the host's parallelism. `shard` salts the plan seed so
    /// each shard's reservoir and re-seed stream are independent.
    ///
    /// # Errors
    ///
    /// Propagates [`IncrementalEm::new`] validation failures (`plan` and
    /// the `reg_covar > 0` requirement are also checked earlier, by
    /// [`crate::IcgmmConfig::validate`]).
    pub fn new(
        engine: GmmPolicyEngine,
        gmm: &Gmm,
        em: EmConfig,
        preprocess: &PreprocessConfig,
        plan: AdaptPlan,
        shard: u64,
        sink: AdaptSink,
    ) -> Result<Self, GmmError> {
        debug_assert!(!plan.is_empty(), "callers skip wrapping for empty plans");
        let trainer_cfg = EmConfig {
            seed: salt(plan.seed, shard, 1),
            threads: 1,
            ..em
        };
        let trainer = IncrementalEm::new(gmm, trainer_cfg, plan.decay)?;
        let reservoir_salt = salt(plan.seed, shard, 2);
        Ok(AdaptiveEngine {
            engine,
            trainer,
            preprocess: *preprocess,
            check_interval: plan.check_interval,
            reservoir: Reservoir::new(salt(reservoir_salt, 0, 0), plan.reservoir_capacity),
            ring: RecentRing::new(plan.recent_window),
            detector: DriftDetector::new(&plan),
            sink,
            reservoir_salt,
            stats: AdaptStats::default(),
            pos: 0,
            next_check: plan.check_interval,
        })
    }

    /// Policy-engine inferences performed so far (drift-check likelihood
    /// evaluations are counted separately, in [`AdaptStats::evals`]).
    pub fn scores_computed(&self) -> u64 {
        self.engine.scores_computed()
    }

    /// The adaptation telemetry accumulated so far.
    pub fn stats(&self) -> AdaptStats {
        self.stats
    }

    /// The wrapped engine (live scorer generation included).
    pub fn inner(&self) -> &GmmPolicyEngine {
        &self.engine
    }

    /// Standardized feature vector of one buffered sample: Algorithm 1 is
    /// a pure function of the observation count, so the timestamp at any
    /// global position is reconstructed with an O(1) clock fast-forward —
    /// no raw-feature buffering, no disturbance of the live clock.
    fn feature(&self, s: &ObsSample) -> Vec2 {
        let mut t = TimestampTransformer::from_config(&self.preprocess);
        t.advance(s.pos);
        let ts = t.next();
        self.engine
            .scaler()
            .transform([s.page as f64, ts as f64])
    }

    fn buffer(&mut self, page: u64, pos: u64) {
        let s = ObsSample { page, pos };
        self.reservoir.offer(s);
        self.ring.push(s);
    }

    /// Fires every check whose boundary `pos` has reached. Called before
    /// observing a record, so swap points land between records at
    /// deterministic global positions.
    fn checkpoint(&mut self) {
        while self.pos >= self.next_check {
            self.run_check();
            self.next_check += self.check_interval;
        }
    }

    fn run_check(&mut self) {
        self.stats.checks += 1;
        if !self.ring.is_empty() {
            // The likelihood window goes through the SoA batch kernel:
            // the check rides the same fast path as replay scoring, so
            // arming adaptation taxes a run by well under the window's
            // worth of scalar evaluations per interval.
            let zs: Vec<Vec2> = self.ring.samples().iter().map(|s| self.feature(s)).collect();
            let mut ld = vec![0.0; zs.len()];
            self.engine.scorer().log_density_batch(&zs, &mut ld);
            self.stats.evals += ld.len() as u64;
            let mll = ld.iter().sum::<f64>() / ld.len() as f64;
            if self.detector.observe(mll) {
                self.stats.drifts += 1;
                self.try_refit();
            }
        }
        let snapshot = self.stats;
        self.sink.record(move |acc| *acc = snapshot);
    }

    fn try_refit(&mut self) {
        if self.reservoir.len() < MIN_REFIT_SAMPLES {
            self.stats.refit_failures += 1;
            return;
        }
        let xs: Vec<Vec2> = self
            .reservoir
            .samples()
            .iter()
            .map(|s| self.feature(s))
            .collect();
        match self.trainer.refit(&xs, &[]) {
            Ok(gmm) => {
                self.engine.swap_scorer(gmm.scorer().clone());
                self.stats.refits += 1;
                self.stats.swaps += 1;
                self.stats.generation += 1;
                self.stats.last_swap_pos = self.pos;
                // Restart sampling for the new generation: the next refit
                // trains on post-swap observations only, so consecutive
                // refits chase the *current* phase instead of a uniform
                // sample of all history (recency across generations,
                // uniformity within one).
                self.reservoir
                    .restart(salt(self.reservoir_salt, self.stats.generation, 0));
            }
            Err(_) => {
                // Degenerate buffer or singular refit: the previous
                // generation stays live — graceful degradation, counted.
                self.stats.refit_failures += 1;
            }
        }
    }
}

impl ScoreSource for AdaptiveEngine {
    fn observe(&mut self, record: &TraceRecord) {
        self.checkpoint();
        self.buffer(record.page().raw(), self.pos);
        self.engine.observe(record);
        self.pos += 1;
    }

    fn score_current(&mut self) -> f64 {
        self.engine.score_current()
    }

    /// Windowed scoring, segmented at check boundaries: each segment goes
    /// through the wrapped engine's batched kernel, and a boundary inside
    /// the window fires the check exactly where the streaming path would —
    /// scores are bit-identical to per-record `observe`/`score_current`
    /// whatever windows the caller cuts.
    fn score_window(&mut self, records: &[TraceRecord], out: &mut [f64]) {
        assert_eq!(records.len(), out.len(), "one score slot per record");
        let mut start = 0usize;
        for i in 0..records.len() {
            let p = self.pos + (i - start) as u64;
            if p >= self.next_check {
                self.engine
                    .score_window(&records[start..i], &mut out[start..i]);
                self.pos = p;
                self.checkpoint();
                start = i;
            }
            self.buffer(records[i].page().raw(), p);
        }
        self.engine.score_window(&records[start..], &mut out[start..]);
        self.pos += (records.len() - start) as u64;
    }

    fn shardable(&self) -> bool {
        self.engine.shardable()
    }

    fn observe_gap(&mut self, n: u64) {
        self.engine.observe_gap(n);
        self.pos += n;
    }

    /// Sharded windowed scoring with the same boundary segmentation;
    /// `gaps[i]` foreign-shard requests advance the global position before
    /// `records[i]`, so checks fire at the same global boundaries as the
    /// shard's streaming replay.
    fn score_window_gapped(&mut self, records: &[TraceRecord], gaps: &[u64], out: &mut [f64]) {
        assert_eq!(records.len(), out.len(), "one score slot per record");
        assert_eq!(records.len(), gaps.len(), "one gap per record");
        let mut start = 0usize;
        let mut p = self.pos;
        for i in 0..records.len() {
            p += gaps[i];
            if p >= self.next_check {
                self.engine.score_window_gapped(
                    &records[start..i],
                    &gaps[start..i],
                    &mut out[start..i],
                );
                self.pos = p;
                self.checkpoint();
                start = i;
            }
            self.buffer(records[i].page().raw(), p);
            p += 1;
        }
        self.engine
            .score_window_gapped(&records[start..], &gaps[start..], &mut out[start..]);
        self.pos = p;
    }

    fn prefers_batching(&self) -> bool {
        self.engine.prefers_batching()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TrainedModel;
    use icgmm_gmm::{EmTrainer, StandardScaler};

    fn trained(k: usize, seed: u64) -> (TrainedModel, EmConfig) {
        let xs: Vec<Vec2> = (0..512)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
                [(h % 1_000) as f64, ((h >> 12) % 64) as f64]
            })
            .collect();
        let ws: Vec<f64> = vec![1.0; xs.len()];
        let scaler = StandardScaler::fit(&xs, &ws);
        let mut z = xs;
        scaler.transform_all(&mut z);
        let cfg = EmConfig {
            k,
            max_iters: 15,
            threads: 1,
            ..Default::default()
        };
        let (gmm, _) = EmTrainer::new(cfg).unwrap().fit(&z, &[]).unwrap();
        (
            TrainedModel {
                scaler,
                gmm,
                threshold: 0.0,
            },
            cfg,
        )
    }

    fn pre() -> PreprocessConfig {
        PreprocessConfig {
            len_window: 8,
            len_access_shot: 1_000,
            ..Default::default()
        }
    }

    fn adaptive(plan: AdaptPlan, shard: u64) -> AdaptiveEngine {
        let (model, em) = trained(4, 7);
        let engine = GmmPolicyEngine::new(&model, &pre(), false).unwrap();
        AdaptiveEngine::new(
            engine,
            &model.gmm,
            em,
            &pre(),
            plan,
            shard,
            AdaptSink::new(),
        )
        .unwrap()
    }

    fn record(i: u64) -> TraceRecord {
        TraceRecord::read(((i * 13) % 4_096) << 12)
    }

    #[test]
    fn held_off_trigger_scores_bit_identically_to_the_plain_engine() {
        // drift_drop = ∞: checks run, buffers fill, refits never fire —
        // every score must equal the static engine's, streamed or batched.
        let plan = AdaptPlan {
            check_interval: 64,
            drift_drop: f64::INFINITY,
            ..AdaptPlan::drifty(3)
        };
        let (model, em) = trained(4, 7);
        let mut plain = GmmPolicyEngine::new(&model, &pre(), false).unwrap();
        let engine = GmmPolicyEngine::new(&model, &pre(), false).unwrap();
        let mut adaptive = AdaptiveEngine::new(
            engine,
            &model.gmm,
            em,
            &pre(),
            plan,
            0,
            AdaptSink::new(),
        )
        .unwrap();
        let records: Vec<TraceRecord> = (0..500).map(record).collect();
        let mut a = vec![0.0; records.len()];
        adaptive.score_window(&records, &mut a);
        for (r, got) in records.iter().zip(&a) {
            plain.observe(r);
            let want = plain.score_current();
            assert_eq!(want.to_bits(), got.to_bits());
        }
        let stats = adaptive.stats();
        assert!(stats.checks > 0, "checks must have run");
        assert_eq!(stats.swaps, 0, "held-off trigger must never swap");
        assert_eq!(stats.refits, 0);
        assert!(stats.evals > 0);
    }

    #[test]
    fn window_chunking_does_not_move_check_boundaries() {
        // The same record stream pushed as one big window, per-record
        // observes, and ragged chunks must produce identical stats and
        // identical scores — segmentation makes checks position-pure.
        let plan = AdaptPlan {
            check_interval: 100,
            drift_drop: 0.05,
            cooldown_checks: 0,
            ..AdaptPlan::drifty(11)
        };
        let records: Vec<TraceRecord> = (0..900)
            .map(|i| {
                if i < 450 {
                    record(i)
                } else {
                    // Phase change: disjoint page range drives drift.
                    TraceRecord::read((200_000 + (i * 17) % 4_096) << 12)
                }
            })
            .collect();
        let run = |chunks: &[usize]| {
            let mut eng = adaptive(plan, 0);
            let mut scores = Vec::with_capacity(records.len());
            let mut at = 0usize;
            let mut ci = 0usize;
            while at < records.len() {
                let take = chunks[ci % chunks.len()].min(records.len() - at);
                ci += 1;
                let mut out = vec![0.0; take];
                eng.score_window(&records[at..at + take], &mut out);
                scores.extend(out);
                at += take;
            }
            (scores, eng.stats())
        };
        let (s1, t1) = run(&[records.len()]);
        let (s2, t2) = run(&[1]);
        let (s3, t3) = run(&[7, 64, 3, 255]);
        assert!(t1.checks > 0);
        assert_eq!(t1, t2, "per-record vs one-window stats diverged");
        assert_eq!(t1, t3, "ragged chunking moved a check boundary");
        for i in 0..records.len() {
            assert_eq!(s1[i].to_bits(), s2[i].to_bits(), "score {i}");
            assert_eq!(s1[i].to_bits(), s3[i].to_bits(), "score {i}");
        }
    }

    #[test]
    fn drift_triggers_refit_and_publishes_generations() {
        let plan = AdaptPlan {
            check_interval: 100,
            drift_drop: 0.05,
            cooldown_checks: 0,
            recent_window: 64,
            ..AdaptPlan::drifty(5)
        };
        let mut eng = adaptive(plan, 0);
        // Stable phase matching the training distribution, then a hard
        // phase change into a far-away page region.
        for i in 0..400 {
            eng.observe(&record(i));
            let _ = eng.score_current();
        }
        for i in 0..2_000u64 {
            eng.observe(&TraceRecord::read((500_000 + (i * 31) % 2_048) << 12));
            let _ = eng.score_current();
        }
        let stats = eng.stats();
        assert!(stats.checks >= 20);
        assert!(stats.drifts > 0, "phase change must register as drift");
        assert!(stats.swaps > 0, "drift must publish a new generation");
        assert_eq!(stats.swaps, stats.refits);
        assert_eq!(stats.generation, stats.swaps);
        assert!(stats.last_swap_pos > 0);
        // The sink carries the same block the engine reports.
        assert_eq!(eng.sink.snapshot(), stats);
    }

    #[test]
    fn runs_are_deterministic_from_the_adapt_seed() {
        let plan = AdaptPlan {
            check_interval: 128,
            drift_drop: 0.05,
            cooldown_checks: 0,
            ..AdaptPlan::drifty(21)
        };
        let run = |shard: u64| {
            let mut eng = adaptive(plan, shard);
            let records: Vec<TraceRecord> = (0..1_500)
                .map(|i| {
                    if i < 700 {
                        record(i)
                    } else {
                        TraceRecord::read((300_000 + (i * 11) % 1_024) << 12)
                    }
                })
                .collect();
            let mut out = vec![0.0; records.len()];
            eng.score_window(&records, &mut out);
            (out, eng.stats())
        };
        let (s1, t1) = run(0);
        let (s2, t2) = run(0);
        assert_eq!(t1, t2);
        assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A different shard salt draws a different reservoir stream.
        let (_, t3) = run(1);
        assert_eq!(t1.checks, t3.checks, "check positions are shard-salt-free");
    }

    #[test]
    fn gapped_windows_track_global_positions() {
        // Two-shard split of one global stream: each shard sees half the
        // records with gaps, and check boundaries land at global
        // positions — the shard observing records past a boundary checks
        // there, whatever its local record count.
        let plan = AdaptPlan {
            check_interval: 200,
            drift_drop: f64::INFINITY,
            ..AdaptPlan::drifty(2)
        };
        let records: Vec<TraceRecord> = (0..1_000).map(record).collect();
        let mut eng = adaptive(plan, 0);
        // This "shard" owns the even positions.
        let own: Vec<TraceRecord> = records.iter().step_by(2).copied().collect();
        let gaps: Vec<u64> = (0..own.len()).map(|i| u64::from(i > 0)).collect();
        let mut out = vec![0.0; own.len()];
        eng.score_window_gapped(&own, &gaps, &mut out);
        // 500 own records over 999 global positions: boundaries at
        // 200/400/600/800 all fire (the final position, 998, < 1000).
        assert_eq!(eng.stats().checks, 4);
    }
}
