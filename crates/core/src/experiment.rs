//! Suite runner: benchmarks × policy modes, optionally in parallel.

use crate::benchmarks::BenchmarkSpec;
use crate::config::PolicyMode;
use crate::error::IcgmmError;
use crate::system::{Icgmm, RunReport};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One `(benchmark, mode)` measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Policy mode.
    pub mode: PolicyMode,
    /// Miss rate, %.
    pub miss_pct: f64,
    /// Average access latency, µs.
    pub avg_us: f64,
    /// Bypassed misses.
    pub bypasses: u64,
    /// Dirty evictions (each costs a 900 µs write-back on TLC).
    pub dirty_evictions: u64,
    /// Total evaluated requests.
    pub requests: u64,
    /// Miss-window speculation divergences (0 for score-free modes).
    pub spec_divergences: u64,
    /// …of which: real eviction victim differed from the shadow's
    /// policy-aware prediction.
    pub spec_victim_divergences: u64,
    /// …of which: hit/miss misclassifications (predicted hit that missed
    /// + predicted miss that hit), the residue of tolerated phantoms.
    pub spec_class_divergences: u64,
    /// …of which: admission bypasses tolerated as shadow phantoms.
    pub spec_admission_bypasses: u64,
    /// Miss runs the batcher split because a stored-score victim decision
    /// depended on a score still being prefetched (0 for score-free
    /// modes; a cost signal, not a divergence).
    pub spec_run_splits: u64,
    /// Fraction of policy-engine scores served by the batched kernel
    /// (0 for score-free modes).
    pub batched_score_fraction: f64,
    /// Fault-injection and degradation counters (all-zero without an
    /// armed [`crate::IcgmmConfig::fault`] plan).
    pub fault: icgmm_cache::FaultStats,
    /// Online-adaptation counters (all-zero without an armed
    /// [`crate::IcgmmConfig::adapt`] plan).
    pub adapt: icgmm_cache::AdaptStats,
}

impl ExperimentResult {
    fn from_run(benchmark: &str, run: &RunReport) -> Self {
        ExperimentResult {
            benchmark: benchmark.to_string(),
            mode: run.mode,
            miss_pct: run.miss_rate_pct(),
            avg_us: run.avg_us(),
            bypasses: run.sim.stats.bypasses(),
            dirty_evictions: run.sim.stats.dirty_evictions,
            requests: run.sim.stats.accesses(),
            spec_divergences: run.spec.map(|s| s.divergences()).unwrap_or(0),
            spec_victim_divergences: run.spec.map(|s| s.victim_divergences).unwrap_or(0),
            spec_class_divergences: run.spec.map(|s| s.class_divergences()).unwrap_or(0),
            spec_admission_bypasses: run.spec.map(|s| s.admission_divergences).unwrap_or(0),
            spec_run_splits: run.spec.map(|s| s.run_splits).unwrap_or(0),
            batched_score_fraction: run.spec.map(|s| s.batched_fraction()).unwrap_or(0.0),
            fault: run.sim.fault,
            adapt: run.sim.adapt,
        }
    }
}

/// Runs one benchmark through the given modes (generating and fitting
/// once, then simulating each mode) with the spec's default configuration.
///
/// # Errors
///
/// Propagates configuration/training errors.
pub fn run_benchmark(
    spec: &BenchmarkSpec,
    modes: &[PolicyMode],
) -> Result<Vec<ExperimentResult>, IcgmmError> {
    run_benchmark_with(spec, spec.config(), modes)
}

/// [`run_benchmark`] with an explicit configuration (cache-size sweeps,
/// reduced-K quick runs, fixed-point ablations).
///
/// # Errors
///
/// Propagates configuration/training errors.
pub fn run_benchmark_with(
    spec: &BenchmarkSpec,
    config: crate::IcgmmConfig,
    modes: &[PolicyMode],
) -> Result<Vec<ExperimentResult>, IcgmmError> {
    let workload = spec.workload();
    let trace = workload.generate(spec.requests, spec.seed);
    let mut sys = Icgmm::new(config)?;
    if modes.iter().any(|m| m.uses_gmm()) {
        sys.fit(&trace)?;
    }
    let mut out = Vec::with_capacity(modes.len());
    for &mode in modes {
        let run = sys.run(&trace, mode)?;
        out.push(ExperimentResult::from_run(workload.name(), &run));
    }
    Ok(out)
}

/// Runs the whole suite, one worker thread per benchmark when `parallel`.
///
/// Results are returned in suite order regardless of completion order.
///
/// # Errors
///
/// Returns the first benchmark error encountered.
pub fn run_suite(
    specs: &[BenchmarkSpec],
    modes: &[PolicyMode],
    parallel: bool,
) -> Result<Vec<ExperimentResult>, IcgmmError> {
    if !parallel || specs.len() <= 1 {
        let mut all = Vec::new();
        for s in specs {
            all.extend(run_benchmark(s, modes)?);
        }
        return Ok(all);
    }

    type Slot = Option<Result<Vec<ExperimentResult>, IcgmmError>>;
    let slots: Mutex<Vec<Slot>> = Mutex::new((0..specs.len()).map(|_| None).collect());
    crossbeam::thread::scope(|scope| {
        for (i, spec) in specs.iter().enumerate() {
            let slots = &slots;
            scope.spawn(move |_| {
                let r = run_benchmark(spec, modes);
                slots.lock()[i] = Some(r);
            });
        }
    })
    .expect("experiment worker panicked");

    let mut all = Vec::new();
    for slot in slots.into_inner() {
        all.extend(slot.expect("all slots filled")?);
    }
    Ok(all)
}

/// One static-vs-adaptive measurement: the same trace, the same offline
/// model, replayed once with the scorer frozen at generation 0 and once
/// with the online refit loop armed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptComparison {
    /// The static-scorer arm.
    pub static_run: ExperimentResult,
    /// The adaptive arm ([`crate::IcgmmConfig::adapt`] armed).
    pub adaptive_run: ExperimentResult,
}

impl AdaptComparison {
    /// Miss-rate improvement of the adaptive arm, in percentage points
    /// (positive = adaptation won).
    pub fn miss_improvement_pts(&self) -> f64 {
        self.static_run.miss_pct - self.adaptive_run.miss_pct
    }
}

/// The static-vs-adaptive experiment axis: fit **once** on the first
/// `train_prefix` records (the whole trace when 0), install the same
/// offline model in both arms, then replay the full trace with the scorer
/// frozen (adapt plan emptied) and with `config.adapt` armed. Training on
/// a prefix is the drift scenario — later workload phases are unseen at
/// fit time, so the static model goes stale and the refit loop has
/// something to repair.
///
/// # Errors
///
/// [`IcgmmError::Config`] when `config.adapt` is empty (there would be no
/// adaptive arm) and the usual training/replay errors.
pub fn run_static_vs_adaptive(
    name: &str,
    trace: &icgmm_trace::Trace,
    config: crate::IcgmmConfig,
    mode: PolicyMode,
    train_prefix: usize,
) -> Result<AdaptComparison, IcgmmError> {
    if config.adapt.is_empty() {
        return Err(IcgmmError::Config(
            "static-vs-adaptive needs an armed adapt plan".into(),
        ));
    }
    let static_config = crate::IcgmmConfig {
        adapt: icgmm_cache::AdaptPlan::empty(),
        ..config
    };
    let mut trainer_sys = Icgmm::new(static_config)?;
    let model = if train_prefix > 0 && train_prefix < trace.len() {
        let prefix = icgmm_trace::Trace::from_records(trace.records()[..train_prefix].to_vec());
        trainer_sys.fit(&prefix)?;
        trainer_sys.model().expect("just fitted").clone()
    } else {
        trainer_sys.fit(trace)?;
        trainer_sys.model().expect("just fitted").clone()
    };

    let mut static_sys = Icgmm::new(static_config)?;
    static_sys.set_model(model.clone());
    let static_run = static_sys.run(trace, mode)?;

    let mut adaptive_sys = Icgmm::new(config)?;
    adaptive_sys.set_model(model);
    let adaptive_run = adaptive_sys.run(trace, mode)?;

    Ok(AdaptComparison {
        static_run: ExperimentResult::from_run(name, &static_run),
        adaptive_run: ExperimentResult::from_run(name, &adaptive_run),
    })
}

/// Extracts the result for `(benchmark, mode)` from a result set.
pub fn find<'a>(
    results: &'a [ExperimentResult],
    benchmark: &str,
    mode: PolicyMode,
) -> Option<&'a ExperimentResult> {
    results
        .iter()
        .find(|r| r.benchmark == benchmark && r.mode == mode)
}

/// The best (lowest-miss) GMM mode result for a benchmark, mirroring the
/// paper's Fig. 6 "pick the best strategy" presentation.
pub fn best_gmm<'a>(
    results: &'a [ExperimentResult],
    benchmark: &str,
) -> Option<&'a ExperimentResult> {
    results
        .iter()
        .filter(|r| r.benchmark == benchmark && r.mode.uses_gmm())
        .min_by(|a, b| a.miss_pct.partial_cmp(&b.miss_pct).expect("finite rates"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_trace::synth::WorkloadKind;

    fn tiny_spec(kind: WorkloadKind) -> BenchmarkSpec {
        BenchmarkSpec {
            kind,
            requests: 20_000,
            seed: 5,
            admission_quantile: 0.2,
        }
    }

    /// Small EM settings so tests stay fast in debug builds.
    fn tiny_config() -> crate::IcgmmConfig {
        crate::IcgmmConfig {
            em: icgmm_gmm::EmConfig {
                k: 8,
                max_iters: 10,
                ..Default::default()
            },
            max_train_cells: 5_000,
            ..Default::default()
        }
    }

    #[test]
    fn run_benchmark_produces_one_row_per_mode() {
        // Score-free modes skip training entirely — fast at any K.
        let mut spec = tiny_spec(WorkloadKind::Memtier);
        spec.requests = 10_000;
        let results = run_benchmark(&spec, &[PolicyMode::Lru, PolicyMode::Fifo]).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.benchmark == "memtier"));
        assert!(results.iter().all(|r| r.requests > 0));
    }

    #[test]
    fn suite_order_is_stable_under_parallelism() {
        let specs = vec![
            tiny_spec(WorkloadKind::Stream),
            tiny_spec(WorkloadKind::Parsec),
        ];
        let serial = run_suite(&specs, &[PolicyMode::Lru], false).unwrap();
        let parallel = run_suite(&specs, &[PolicyMode::Lru], true).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial[0].benchmark, "stream");
        assert_eq!(serial[1].benchmark, "parsec");
    }

    #[test]
    fn find_and_best_gmm_helpers() {
        let results = vec![
            ExperimentResult {
                benchmark: "x".into(),
                mode: PolicyMode::Lru,
                miss_pct: 5.0,
                avg_us: 4.0,
                bypasses: 0,
                dirty_evictions: 0,
                requests: 100,
                spec_divergences: 0,
                spec_victim_divergences: 0,
                spec_class_divergences: 0,
                spec_admission_bypasses: 0,
                spec_run_splits: 0,
                batched_score_fraction: 0.0,
                fault: icgmm_cache::FaultStats::default(),
                adapt: icgmm_cache::AdaptStats::default(),
            },
            ExperimentResult {
                benchmark: "x".into(),
                mode: PolicyMode::GmmCachingOnly,
                miss_pct: 4.0,
                avg_us: 3.5,
                bypasses: 5,
                dirty_evictions: 0,
                requests: 100,
                spec_divergences: 0,
                spec_victim_divergences: 0,
                spec_class_divergences: 0,
                spec_admission_bypasses: 0,
                spec_run_splits: 0,
                batched_score_fraction: 0.0,
                fault: icgmm_cache::FaultStats::default(),
                adapt: icgmm_cache::AdaptStats::default(),
            },
            ExperimentResult {
                benchmark: "x".into(),
                mode: PolicyMode::GmmCachingEviction,
                miss_pct: 3.0,
                avg_us: 3.0,
                bypasses: 9,
                dirty_evictions: 0,
                requests: 100,
                spec_divergences: 0,
                spec_victim_divergences: 0,
                spec_class_divergences: 0,
                spec_admission_bypasses: 0,
                spec_run_splits: 0,
                batched_score_fraction: 0.0,
                fault: icgmm_cache::FaultStats::default(),
                adapt: icgmm_cache::AdaptStats::default(),
            },
        ];
        assert_eq!(find(&results, "x", PolicyMode::Lru).unwrap().miss_pct, 5.0);
        assert!(find(&results, "y", PolicyMode::Lru).is_none());
        assert_eq!(
            best_gmm(&results, "x").unwrap().mode,
            PolicyMode::GmmCachingEviction
        );
    }

    #[test]
    fn gmm_modes_in_suite_trigger_training() {
        let mut spec = tiny_spec(WorkloadKind::Memtier);
        spec.requests = 10_000;
        let results = run_benchmark_with(
            &spec,
            tiny_config(),
            &[PolicyMode::Lru, PolicyMode::GmmEvictionOnly],
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].mode, PolicyMode::GmmEvictionOnly);
    }
}
