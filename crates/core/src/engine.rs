//! The trained GMM policy engine: scaler + mixture + online Algorithm-1
//! timestamping, packaged as a [`ScoreSource`] for the cache simulator.

use icgmm_cache::ScoreSource;
use icgmm_gmm::fixed::FixedGmm;
use icgmm_gmm::{Gmm, GmmError, GmmScorer, StandardScaler, Vec2};
use icgmm_trace::{PreprocessConfig, TimestampTransformer, TraceRecord};
use serde::{Deserialize, Serialize};

/// Serializable bundle of everything the policy engine needs at run time.
///
/// This is the software analogue of the FPGA's "one-time loading from HBM
/// before kernel starts" weight package: feature scaler, mixture
/// parameters and the calibrated admission threshold.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainedModel {
    /// Affine feature map fitted on training cells.
    pub scaler: StandardScaler,
    /// The trained mixture.
    pub gmm: Gmm,
    /// Calibrated admission threshold (on the model's score scale).
    pub threshold: f64,
}

/// Online policy engine driving the cache simulator.
///
/// Scoring goes through the mixture's flat [`GmmScorer`] kernel: the
/// streaming path (`score_current`) uses its allocation-free scalar
/// log-sum-exp, and the windowed path (`score_window`) batches a whole
/// miss window through `score_batch` — bit-identical results, one kernel.
#[derive(Clone, Debug)]
pub struct GmmPolicyEngine {
    scaler: StandardScaler,
    scorer: GmmScorer,
    fixed: Option<FixedGmm>,
    transformer: TimestampTransformer,
    current: [f64; 2],
    scores_computed: u64,
    /// Reusable standardized-feature buffer for `score_window`.
    window_z: Vec<Vec2>,
}

impl GmmPolicyEngine {
    /// Windows at or below this many points take the allocation-free
    /// scalar kernel — the batched kernel's per-call setup would dominate
    /// (the speculative batcher emits many short windows on hit-heavy
    /// traces). Scalar and batched scoring are bit-identical, so the
    /// routing is invisible.
    const SCALAR_MAX: usize = 4;

    /// Builds the engine.
    ///
    /// With `fixed_point = true`, scores are produced by the FPGA-style
    /// fixed-point datapath instead of f64.
    ///
    /// # Errors
    ///
    /// Propagates quantization failures when `fixed_point` is requested.
    pub fn new(
        model: &TrainedModel,
        preprocess: &PreprocessConfig,
        fixed_point: bool,
    ) -> Result<Self, GmmError> {
        let fixed = if fixed_point {
            Some(FixedGmm::from_gmm(&model.gmm)?)
        } else {
            None
        };
        Ok(GmmPolicyEngine {
            scaler: model.scaler,
            scorer: model.gmm.scorer().clone(),
            fixed,
            transformer: TimestampTransformer::from_config(preprocess),
            current: [0.0, 0.0],
            scores_computed: 0,
            window_z: Vec::new(),
        })
    }

    /// Score an arbitrary `(page, timestamp)` pair (diagnostics; the
    /// simulator path goes through [`ScoreSource`]).
    pub fn score_at(&mut self, page: u64, timestamp: u64) -> f64 {
        let z = self.scaler.transform([page as f64, timestamp as f64]);
        self.scores_computed += 1;
        match &self.fixed {
            Some(fx) => fx.score(z),
            None => self.scorer.score(z),
        }
    }

    /// Number of policy-engine inferences so far (each would take ~3 µs on
    /// the FPGA; the dataflow model uses this for busy-time accounting).
    pub fn scores_computed(&self) -> u64 {
        self.scores_computed
    }

    /// Resets the online timestamp clock (new trace replay).
    pub fn reset(&mut self) {
        self.transformer.reset();
        self.scores_computed = 0;
    }

    /// Copies the Algorithm 1 clock state (and last observation) from
    /// another engine — used by adaptive retraining to swap in fresh model
    /// parameters mid-run without disturbing the timestamp stream.
    pub fn sync_clock_from(&mut self, other: &GmmPolicyEngine) {
        self.transformer = other.transformer.clone();
        self.current = other.current;
    }

    /// Publishes a new scorer generation: replaces the mixture tables
    /// behind every subsequent score. The tables live in an
    /// `Arc<ScorerTables>` inside [`GmmScorer`], so this is a pointer
    /// swap — the clock, the scaler, the inference counter and any other
    /// engine clone are untouched, and in-flight replay never blocks on
    /// the training that produced the new tables.
    ///
    /// Only the f64 datapath swaps; the online refit loop refuses
    /// fixed-point engines at configuration time
    /// ([`crate::IcgmmConfig::validate`]), so `fixed` is `None` here.
    pub fn swap_scorer(&mut self, scorer: GmmScorer) {
        debug_assert!(
            self.fixed.is_none(),
            "online adaptation is validated out for fixed-point engines"
        );
        self.scorer = scorer;
    }

    /// The live scorer (current generation's mixture tables).
    pub fn scorer(&self) -> &GmmScorer {
        &self.scorer
    }

    /// The affine feature map the engine standardizes observations with.
    pub fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }
}

impl ScoreSource for GmmPolicyEngine {
    fn observe(&mut self, record: &TraceRecord) {
        let ts = self.transformer.next();
        self.current = [record.page().raw() as f64, ts as f64];
    }

    fn score_current(&mut self) -> f64 {
        let z = self.scaler.transform(self.current);
        self.scores_computed += 1;
        match &self.fixed {
            Some(fx) => fx.score(z),
            None => self.scorer.score(z),
        }
    }

    /// Batched override: advance the Algorithm 1 clock over the window,
    /// standardize every `(page, timestamp)` pair into a reused buffer,
    /// and score them in one `score_batch` call instead of per-miss
    /// round-trips. Results are bit-identical to the streaming path
    /// (asserted in this module's tests).
    ///
    /// Windows shorter than a few points take the allocation-free scalar
    /// kernel instead — the batched kernel's per-call setup would dominate
    /// there, and the speculative batcher emits many short windows on
    /// hit-heavy traces. Scalar and batched scoring are bit-identical
    /// (property-tested in the gmm crate), so the routing is invisible.
    fn score_window(&mut self, records: &[TraceRecord], out: &mut [f64]) {
        assert_eq!(records.len(), out.len(), "one score slot per record");
        if records.len() <= Self::SCALAR_MAX {
            for (record, o) in records.iter().zip(out.iter_mut()) {
                self.observe(record);
                *o = self.score_current();
            }
            return;
        }
        self.window_z.clear();
        self.window_z.reserve(records.len());
        for record in records {
            let ts = self.transformer.next();
            self.current = [record.page().raw() as f64, ts as f64];
            self.window_z.push(self.scaler.transform(self.current));
        }
        self.scores_computed += records.len() as u64;
        debug_assert_eq!(
            self.window_z.len(),
            out.len(),
            "standardized window must line up with the output slice"
        );
        match &self.fixed {
            Some(fx) => fx.score_batch(&self.window_z, out),
            None => self.scorer.score_batch(&self.window_z, out),
        }
    }

    /// Algorithm 1 is a pure function of the observation count, and the
    /// scored features are the observed record's own page plus that
    /// count-derived timestamp — nothing from earlier records' content.
    /// Set-partitioned shards can therefore skip foreign records with an
    /// O(1) clock fast-forward and stay bit-identical.
    fn shardable(&self) -> bool {
        true
    }

    fn observe_gap(&mut self, n: u64) {
        self.transformer.advance(n);
    }

    /// Sharded counterpart of the batched `score_window`: `gaps[i]`
    /// foreign-shard requests tick the Algorithm 1 clock before
    /// `records[i]` is observed, and the whole window still goes through
    /// one batched kernel call — a shard pays the same per-window kernel
    /// economics as the single-threaded batcher.
    fn score_window_gapped(&mut self, records: &[TraceRecord], gaps: &[u64], out: &mut [f64]) {
        assert_eq!(records.len(), out.len(), "one score slot per record");
        assert_eq!(records.len(), gaps.len(), "one gap per record");
        if records.len() <= Self::SCALAR_MAX {
            for ((record, &gap), o) in records.iter().zip(gaps).zip(out.iter_mut()) {
                self.transformer.advance(gap);
                self.observe(record);
                *o = self.score_current();
            }
            return;
        }
        self.window_z.clear();
        self.window_z.reserve(records.len());
        for (record, &gap) in records.iter().zip(gaps) {
            self.transformer.advance(gap);
            let ts = self.transformer.next();
            self.current = [record.page().raw() as f64, ts as f64];
            self.window_z.push(self.scaler.transform(self.current));
        }
        self.scores_computed += records.len() as u64;
        match &self.fixed {
            Some(fx) => fx.score_batch(&self.window_z, out),
            None => self.scorer.score_batch(&self.window_z, out),
        }
    }

    /// The batched kernel wins per point at any K, but the simulator's
    /// miss-window speculation costs a few tens of ns per *request*; only
    /// at substantial component counts is the absolute per-miss saving
    /// large enough to pay for it. Below that, the default entry points
    /// keep the streaming path (identical results, less machinery).
    fn prefers_batching(&self) -> bool {
        self.scorer.k() >= 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_gmm::{Gaussian2, Mat2};

    fn model() -> TrainedModel {
        // Hot pages near 1000, any time.
        let gmm = Gmm::new(
            vec![1.0],
            vec![Gaussian2::new([0.0, 0.0], Mat2::scaled_identity(1.0)).unwrap()],
        )
        .unwrap();
        let scaler = StandardScaler::fit(&[[900.0, 0.0], [1100.0, 100.0]], &[1.0, 1.0]);
        TrainedModel {
            scaler,
            gmm,
            threshold: 0.05,
        }
    }

    fn cfg() -> PreprocessConfig {
        PreprocessConfig {
            len_window: 2,
            len_access_shot: 100,
            ..Default::default()
        }
    }

    #[test]
    fn hot_pages_outscore_cold_pages() {
        let mut e = GmmPolicyEngine::new(&model(), &cfg(), false).unwrap();
        e.observe(&TraceRecord::read(1000 << 12));
        let hot = e.score_current();
        e.observe(&TraceRecord::read(500_000 << 12));
        let cold = e.score_current();
        assert!(hot > cold, "hot {hot} <= cold {cold}");
        assert_eq!(e.scores_computed(), 2);
    }

    #[test]
    fn fixed_point_engine_agrees_on_ordering() {
        let m = model();
        let mut f64e = GmmPolicyEngine::new(&m, &cfg(), false).unwrap();
        let mut fxe = GmmPolicyEngine::new(&m, &cfg(), true).unwrap();
        for page in [990u64, 1000, 1010, 2000, 100_000] {
            let r = TraceRecord::read(page << 12);
            f64e.observe(&r);
            fxe.observe(&r);
            let a = f64e.score_current();
            let b = fxe.score_current();
            assert!(
                (a - b).abs() < a.max(1e-6) * 0.02 + 1e-6,
                "page {page}: f64 {a} vs fixed {b}"
            );
        }
    }

    #[test]
    fn timestamps_advance_with_observations() {
        let mut e = GmmPolicyEngine::new(&model(), &cfg(), false).unwrap();
        // len_window = 2: first two observations share window 0, third is 1.
        e.observe(&TraceRecord::read(0));
        assert_eq!(e.current[1], 0.0);
        e.observe(&TraceRecord::read(0));
        assert_eq!(e.current[1], 0.0);
        e.observe(&TraceRecord::read(0));
        assert_eq!(e.current[1], 1.0);
        e.reset();
        e.observe(&TraceRecord::read(0));
        assert_eq!(e.current[1], 0.0);
        assert_eq!(e.scores_computed(), 0);
    }

    #[test]
    fn windowed_scoring_is_bit_identical_to_streaming() {
        for fixed_point in [false, true] {
            let m = model();
            let mut streaming = GmmPolicyEngine::new(&m, &cfg(), fixed_point).unwrap();
            let mut windowed = GmmPolicyEngine::new(&m, &cfg(), fixed_point).unwrap();
            let records: Vec<TraceRecord> = (0..200u64)
                .map(|i| TraceRecord::read(((900 + i * 7) % 2000) << 12))
                .collect();
            let mut out = vec![0.0; records.len()];
            windowed.score_window(&records, &mut out);
            for (r, o) in records.iter().zip(&out) {
                streaming.observe(r);
                let s = streaming.score_current();
                assert_eq!(o.to_bits(), s.to_bits(), "fixed_point={fixed_point}");
            }
            assert_eq!(windowed.scores_computed(), streaming.scores_computed());
            // The Algorithm 1 clock advanced identically: the next
            // observation scores the same on both engines.
            let next = TraceRecord::read(1000 << 12);
            streaming.observe(&next);
            windowed.observe(&next);
            assert_eq!(streaming.score_current(), windowed.score_current());
        }
    }

    #[test]
    fn score_at_matches_stream_path() {
        let mut e = GmmPolicyEngine::new(&model(), &cfg(), false).unwrap();
        e.observe(&TraceRecord::read(1000 << 12));
        let streamed = e.score_current();
        let mut e2 = GmmPolicyEngine::new(&model(), &cfg(), false).unwrap();
        let direct = e2.score_at(1000, 0);
        assert_eq!(streamed, direct);
    }
}
