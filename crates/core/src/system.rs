//! The end-to-end ICGMM system: fit (offline GMM training, paper §3) and
//! run (online cache simulation with the chosen policy, paper §5).

use crate::config::{IcgmmConfig, PolicyMode};
use crate::engine::{GmmPolicyEngine, TrainedModel};
use crate::error::IcgmmError;
use crate::online::AdaptiveEngine;
use icgmm_cache::{
    AdaptSink, AdaptStats, AlwaysAdmit, BeladyPolicy, FailoverAdmission, FailoverEviction,
    FaultPlan, FaultSink, FaultyScore, FifoPolicy, GmmScorePolicy, LatencyModel, LfuPolicy,
    LruPolicy, RandomPolicy, ScorerHealth, SetAssocCache, ShardCtx, ShardPolicies,
    ShardedSimulator, SimReport, SpecStats, ThresholdAdmit, WindowedSimulator,
};
use icgmm_gmm::{calibrate_threshold, EmReport, EmTrainer, StandardScaler};
use icgmm_hw::{DataflowConfig, DataflowReport};
use icgmm_serve::{CacheServer, ServeConfig, ServeReport};
use icgmm_trace::{extract_weighted_cells_range, trim, Trace, TraceRecord};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Summary of one `fit` (offline training) invocation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FitSummary {
    /// Records remaining after trimming.
    pub records_used: usize,
    /// Deduplicated `(page, window)` training cells before subsampling.
    pub cells_total: usize,
    /// Cells actually used for EM.
    pub cells_trained: usize,
    /// EM convergence report.
    pub em: EmReport,
    /// Calibrated admission threshold.
    pub threshold: f64,
}

/// Result of one policy run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Which policy produced this.
    pub mode: PolicyMode,
    /// Simulator output (miss rates, latency).
    pub sim: SimReport,
    /// Policy-engine inferences performed (0 for score-free modes).
    ///
    /// With the speculative batcher this counts *speculated* inferences —
    /// the batched kernel also scores predicted misses that turn out to
    /// hit, exactly like the hardware pipeline scoring a window that a
    /// later admission decision partially discards.
    pub gmm_inferences: u64,
    /// Miss-window speculation telemetry (`None` for score-free modes,
    /// which take the streaming path).
    pub spec: Option<SpecStats>,
}

impl RunReport {
    /// Miss rate in percent.
    pub fn miss_rate_pct(&self) -> f64 {
        self.sim.miss_rate_pct()
    }

    /// Average access latency in µs.
    pub fn avg_us(&self) -> f64 {
        self.sim.avg_us
    }
}

/// The single-threaded replay's score stack: the plain engine, the
/// adaptive wrapper, and either of them behind the fault injector. Built
/// once per run from the configuration's plans; empty plans contribute no
/// layer, so disabled features stay bit-identical by construction.
enum ScoreStack {
    None,
    Plain(GmmPolicyEngine),
    Adaptive(Box<AdaptiveEngine>),
    Faulty(FaultyScore<GmmPolicyEngine>),
    FaultyAdaptive(Box<FaultyScore<AdaptiveEngine>>),
}

impl ScoreStack {
    fn as_score(&mut self) -> Option<&mut dyn icgmm_cache::ScoreSource> {
        match self {
            ScoreStack::None => None,
            ScoreStack::Plain(e) => Some(e),
            ScoreStack::Adaptive(a) => Some(a.as_mut()),
            ScoreStack::Faulty(f) => Some(f),
            ScoreStack::FaultyAdaptive(f) => Some(f.as_mut()),
        }
    }

    fn scores_computed(&self) -> u64 {
        match self {
            ScoreStack::None => 0,
            ScoreStack::Plain(e) => e.scores_computed(),
            ScoreStack::Adaptive(a) => a.scores_computed(),
            ScoreStack::Faulty(f) => f.inner().scores_computed(),
            ScoreStack::FaultyAdaptive(f) => f.inner().scores_computed(),
        }
    }

    fn adapt_stats(&self) -> AdaptStats {
        match self {
            ScoreStack::Adaptive(a) => a.stats(),
            ScoreStack::FaultyAdaptive(f) => f.inner().stats(),
            _ => AdaptStats::default(),
        }
    }
}

/// The ICGMM system: configuration + (after [`Icgmm::fit`]) a trained
/// policy engine.
///
/// ```no_run
/// use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
/// use icgmm_trace::synth::{Workload, WorkloadKind};
///
/// let trace = WorkloadKind::Memtier.default_workload().generate(200_000, 1);
/// let mut sys = Icgmm::new(IcgmmConfig::default())?;
/// sys.fit(&trace)?;
/// let lru = sys.run(&trace, PolicyMode::Lru)?;
/// let gmm = sys.run(&trace, PolicyMode::GmmCachingEviction)?;
/// assert!(gmm.miss_rate_pct() <= lru.miss_rate_pct());
/// # Ok::<(), icgmm::IcgmmError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Icgmm {
    cfg: IcgmmConfig,
    model: Option<TrainedModel>,
    last_fit: Option<FitSummary>,
}

impl Icgmm {
    /// Creates an untrained system.
    ///
    /// # Errors
    ///
    /// Returns [`IcgmmError::Config`] for invalid configuration.
    pub fn new(cfg: IcgmmConfig) -> Result<Self, IcgmmError> {
        cfg.validate()?;
        Ok(Icgmm {
            cfg,
            model: None,
            last_fit: None,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &IcgmmConfig {
        &self.cfg
    }

    /// The trained model, if any.
    pub fn model(&self) -> Option<&TrainedModel> {
        self.model.as_ref()
    }

    /// The last fit summary, if any.
    pub fn last_fit(&self) -> Option<&FitSummary> {
        self.last_fit.as_ref()
    }

    /// Installs an externally trained model (e.g. deserialized from disk).
    pub fn set_model(&mut self, model: TrainedModel) {
        self.model = Some(model);
    }

    /// Offline training (paper §3): trim the trace, extract weighted
    /// `(page, window)` cells, subsample, standardize, run EM, calibrate
    /// the admission threshold.
    ///
    /// # Errors
    ///
    /// [`IcgmmError::EmptyTrace`] when nothing survives trimming, or a
    /// wrapped GMM error from EM.
    pub fn fit(&mut self, trace: &Trace) -> Result<&FitSummary, IcgmmError> {
        let (start, end) = self.cfg.preprocess.kept_range(trace.len());
        if start >= end {
            return Err(IcgmmError::EmptyTrace);
        }
        // The Algorithm 1 clock runs from the start of the trace; only the
        // kept middle contributes training cells (paper §3.1).
        let cells = extract_weighted_cells_range(trace.records(), &self.cfg.preprocess, start, end);
        let records_used = end - start;
        let cells_total = cells.len();

        // Uniform subsample of cells (weights ride along, so weighted EM on
        // the subsample estimates the same mixture).
        let mut rng = StdRng::seed_from_u64(self.cfg.em.seed ^ 0x5EED_CE11);
        let sampled: Vec<&icgmm_trace::WeightedSample> = if cells.len() > self.cfg.max_train_cells {
            let mut idx: Vec<usize> = (0..cells.len()).collect();
            idx.shuffle(&mut rng);
            idx.truncate(self.cfg.max_train_cells);
            idx.into_iter().map(|i| &cells[i]).collect()
        } else {
            cells.iter().collect()
        };

        let mut xs: Vec<[f64; 2]> = sampled.iter().map(|c| [c.page, c.time]).collect();
        let ws: Vec<f64> = sampled.iter().map(|c| c.weight).collect();
        let scaler = StandardScaler::fit(&xs, &ws);
        scaler.transform_all(&mut xs);

        let trainer = EmTrainer::new(self.cfg.em)?;
        let (gmm, em_report) = trainer.fit(&xs, &ws)?;
        let threshold = calibrate_threshold(&gmm, &xs, &ws, &self.cfg.threshold);

        let summary = FitSummary {
            records_used,
            cells_total,
            cells_trained: xs.len(),
            em: em_report,
            threshold,
        };
        self.model = Some(TrainedModel {
            scaler,
            gmm,
            threshold,
        });
        self.last_fit = Some(summary);
        Ok(self.last_fit.as_ref().expect("just set"))
    }

    /// Builds a fresh policy engine from the trained model.
    ///
    /// # Errors
    ///
    /// [`IcgmmError::NotFitted`] before `fit`.
    pub fn policy_engine(&self) -> Result<GmmPolicyEngine, IcgmmError> {
        let model = self.model.as_ref().ok_or(IcgmmError::NotFitted)?;
        Ok(GmmPolicyEngine::new(
            model,
            &self.cfg.preprocess,
            self.cfg.fixed_point_inference,
        )?)
    }

    /// The evaluated portion of a trace (same trim as training — warm-up
    /// and tail are excluded from measurement, paper §3.1).
    pub fn eval_records<'a>(&self, trace: &'a Trace) -> &'a [TraceRecord] {
        trim(trace, &self.cfg.preprocess)
    }

    /// Splits a trace into its warm-up prefix and measured middle. The
    /// warm-up is replayed through the cache (state, policies and the
    /// Algorithm 1 clock all see it) but excluded from statistics.
    fn phases<'a>(&self, trace: &'a Trace) -> (&'a [TraceRecord], &'a [TraceRecord]) {
        let (start, end) = self.cfg.preprocess.kept_range(trace.len());
        (&trace.records()[..start], &trace.records()[start..end])
    }

    /// Runs one policy mode over the (trimmed) trace with the analytic
    /// latency model — the paper's Fig. 6 / Table 1 measurement.
    ///
    /// # Errors
    ///
    /// [`IcgmmError::NotFitted`] if `mode.uses_gmm()` and the system is
    /// untrained; cache-geometry errors otherwise.
    pub fn run(&self, trace: &Trace, mode: PolicyMode) -> Result<RunReport, IcgmmError> {
        self.run_with_latency(trace, mode, &self.cfg.latency)
    }

    /// [`Icgmm::run`] with an explicit latency model (SSD sweeps).
    ///
    /// # Errors
    ///
    /// As for [`Icgmm::run`].
    pub fn run_with_latency(
        &self,
        trace: &Trace,
        mode: PolicyMode,
        latency: &LatencyModel,
    ) -> Result<RunReport, IcgmmError> {
        let (warmup, measured) = self.phases(trace);
        let mut cache = SetAssocCache::new(self.cfg.cache)?;
        let sets = self.cfg.cache.num_sets();
        let ways = self.cfg.cache.ways;

        let engine = if mode.uses_gmm() {
            Some(self.policy_engine()?)
        } else {
            None
        };
        let threshold = self.model.as_ref().map(|m| m.threshold).unwrap_or(0.0);

        // One simulator per run: engines at paper-scale K lookahead-
        // classify `sim_window` requests and ride the batched scoring
        // kernel; small-K engines (where scalar scoring is too cheap to
        // out-earn the speculation overhead) and score-free modes take
        // the streaming loop — bit-identical either way.
        let use_batched = engine
            .as_ref()
            .is_some_and(icgmm_cache::ScoreSource::prefers_batching);

        // Score-stack plumbing: an armed adaptation plan wraps the engine
        // in the online refit loop, and an armed fault plan passes its
        // scores through the injector (feeding the health monitor) while
        // the GMM-driven policies gain their degradation fallbacks. Empty
        // plans wrap nothing, so plain runs take exactly the original code
        // paths.
        let plan = self.cfg.fault;
        let sink = FaultSink::new();
        let health = (engine.is_some() && plan.monitor_armed()).then(|| ScorerHealth::new(&plan));
        let scorer_faulted = engine.is_some() && (plan.scorer_armed() || health.is_some());
        let mut stack = match engine {
            None => ScoreStack::None,
            Some(e) => {
                let adaptive = (!self.cfg.adapt.is_empty())
                    .then(|| self.adaptive_engine(e.clone(), 0, AdaptSink::new()));
                match (adaptive, scorer_faulted) {
                    (None, false) => ScoreStack::Plain(e),
                    (None, true) => {
                        ScoreStack::Faulty(FaultyScore::new(e, plan, health.clone(), sink.clone()))
                    }
                    (Some(a), false) => ScoreStack::Adaptive(Box::new(a)),
                    (Some(a), true) => ScoreStack::FaultyAdaptive(Box::new(FaultyScore::new(
                        a,
                        plan,
                        health.clone(),
                        sink.clone(),
                    ))),
                }
            }
        };

        let mut wsim = WindowedSimulator::with_params(self.cfg.spec_params());
        if use_batched && plan.breaker_armed() {
            wsim.set_breaker(plan.breaker_storm_windows, plan.breaker_cooldown_records);
        }
        let mut sim = {
            let wsim = &mut wsim;
            let score: Option<&mut dyn icgmm_cache::ScoreSource> = stack.as_score();
            let wrap_ev = |primary: GmmScorePolicy| -> Box<dyn icgmm_cache::EvictionPolicy + Send> {
                match &health {
                    Some(h) => Box::new(FailoverEviction::new(
                        Box::new(primary),
                        Box::new(LruPolicy::new(sets, ways)),
                        h.clone(),
                        sink.clone(),
                    )),
                    None => Box::new(primary),
                }
            };
            let wrap_adm =
                |primary: ThresholdAdmit| -> Box<dyn icgmm_cache::AdmissionPolicy + Send> {
                    match &health {
                        Some(h) => Box::new(FailoverAdmission::new(
                            Box::new(primary),
                            h.clone(),
                            sink.clone(),
                        )),
                        None => Box::new(primary),
                    }
                };
            let mut run =
                |adm: &mut dyn icgmm_cache::AdmissionPolicy,
                 ev: &mut dyn icgmm_cache::EvictionPolicy,
                 score: Option<&mut dyn icgmm_cache::ScoreSource>| {
                    if use_batched {
                        wsim.run(warmup, measured, &mut cache, adm, ev, score, latency, None)
                    } else {
                        icgmm_cache::simulate_streaming_with_warmup(
                            warmup, measured, &mut cache, adm, ev, score, latency, None,
                        )
                    }
                };
            match mode {
                PolicyMode::Lru => run(&mut AlwaysAdmit, &mut LruPolicy::new(sets, ways), None),
                PolicyMode::Fifo => run(&mut AlwaysAdmit, &mut FifoPolicy::new(sets, ways), None),
                PolicyMode::Random => run(
                    &mut AlwaysAdmit,
                    &mut RandomPolicy::new(self.cfg.em.seed),
                    None,
                ),
                PolicyMode::Lfu => run(&mut AlwaysAdmit, &mut LfuPolicy::new(sets, ways), None),
                PolicyMode::Belady => {
                    // The oracle sees warm-up + measured with absolute
                    // sequence numbers (seq is continuous across phases).
                    let end = warmup.len() + measured.len();
                    let mut ev = BeladyPolicy::from_records(&trace.records()[..end], sets, ways);
                    run(&mut AlwaysAdmit, &mut ev, None)
                }
                PolicyMode::GmmCachingOnly => {
                    let mut adm = wrap_adm(self.admission(threshold));
                    run(adm.as_mut(), &mut LruPolicy::new(sets, ways), score)
                }
                PolicyMode::GmmEvictionOnly => {
                    let mut ev = wrap_ev(self.score_eviction(sets, ways));
                    run(&mut AlwaysAdmit, ev.as_mut(), score)
                }
                PolicyMode::GmmCachingEviction => {
                    let mut adm = wrap_adm(self.admission(threshold));
                    let mut ev = wrap_ev(self.score_eviction(sets, ways));
                    run(adm.as_mut(), ev.as_mut(), score)
                }
            }
        };
        if use_batched {
            sim.fault.merge(wsim.fault_stats());
        }
        sim.fault.merge(&sink.snapshot());
        sim.adapt.merge(&stack.adapt_stats());
        let gmm_inferences = stack.scores_computed();
        Ok(RunReport {
            mode,
            sim,
            gmm_inferences,
            spec: use_batched.then(|| *wsim.spec_stats()),
        })
    }

    /// [`Icgmm::run`] with the cache partitioned by set index into the
    /// configuration's `sim_shards` independent shards, replayed on scoped
    /// threads and deterministically merged.
    ///
    /// Each shard owns the sets congruent to its index, with its own
    /// policy state, its own miss-window speculation and its own policy-
    /// engine clone kept on the *global* Algorithm 1 clock (foreign-shard
    /// requests fast-forward the clock in O(1)), so the merged
    /// [`RunReport::sim`] is **bit-identical** to [`Icgmm::run`]'s for
    /// every shard count — enforced by the differential suite in
    /// `tests/shard_differential.rs` and the property grid in
    /// `crates/cache/tests/shard_equivalence.rs`. [`RunReport::spec`] is
    /// the field-wise sum of per-shard telemetry (identical to the
    /// single-threaded batcher's at one shard); `gmm_inferences` counts
    /// the inferences the sharded replay actually performed, which above
    /// one shard may differ from the single-threaded count (speculation
    /// windows are per-shard).
    ///
    /// # Errors
    ///
    /// As for [`Icgmm::run`], plus [`IcgmmError::Config`] when more than
    /// one shard is requested with [`PolicyMode::Random`] — random
    /// eviction draws victims from one global RNG stream, which
    /// set-partitioned replay cannot reproduce.
    pub fn run_sharded(&self, trace: &Trace, mode: PolicyMode) -> Result<RunReport, IcgmmError> {
        self.run_sharded_with_latency(trace, mode, &self.cfg.latency)
    }

    /// [`Icgmm::run_sharded`] with an explicit latency model (SSD sweeps).
    ///
    /// # Errors
    ///
    /// As for [`Icgmm::run_sharded`].
    pub fn run_sharded_with_latency(
        &self,
        trace: &Trace,
        mode: PolicyMode,
        latency: &LatencyModel,
    ) -> Result<RunReport, IcgmmError> {
        let shards = self.cfg.sim_shards;
        if shards > 1 && mode == PolicyMode::Random {
            return Err(IcgmmError::Config(format!(
                "random eviction is not shard-deterministic; run it at sim_shards = 1 \
                 (requested {shards})"
            )));
        }
        let (warmup, measured) = self.phases(trace);
        let engine = if mode.uses_gmm() {
            Some(self.policy_engine()?)
        } else {
            None
        };
        let threshold = self.model.as_ref().map(|m| m.threshold).unwrap_or(0.0);
        // Per-shard fault plumbing: each replay thread gets its own score
        // injector, health monitor and stats sink, so degradation
        // transitions stay deterministic per shard (and a supervisor
        // re-replay after a worker panic replaces the aborted attempt's
        // sink wholesale, keeping merged stats equal to an undisturbed
        // run). Sinks merge into the report in shard order. The sink
        // table sits behind a mutex because `make_shard` now runs on the
        // shard workers themselves (parallel policy construction).
        let plan = self.cfg.fault;
        let scorer_armed = plan.scorer_armed() || plan.monitor_armed();
        let shard_sinks = std::sync::Mutex::new(vec![FaultSink::new(); shards]);
        let adapt_sinks = std::sync::Mutex::new(vec![AdaptSink::new(); shards]);
        let ssim = ShardedSimulator::with_params(shards, self.cfg.spec_params()).with_faults(plan);
        let rep = ssim.run(
            warmup,
            measured,
            self.cfg.cache,
            &|ctx| {
                self.shard_policies(ctx, mode, engine.as_ref(), threshold, plan, scorer_armed, {
                    (&shard_sinks, &adapt_sinks)
                })
            },
            latency,
            None,
        )?;
        let mut rep = rep;
        for sink in shard_sinks
            .into_inner()
            .expect("no worker holds the sink lock")
        {
            rep.sim.fault.merge(&sink.snapshot());
        }
        for sink in adapt_sinks
            .into_inner()
            .expect("no worker holds the adapt sink lock")
        {
            rep.sim.adapt.merge(&sink.snapshot());
        }
        let gmm_inferences = if engine.is_none() {
            0
        } else if rep.batched {
            rep.spec.scores_computed()
        } else {
            rep.scores_consumed
        };
        Ok(RunReport {
            mode,
            sim: rep.sim,
            gmm_inferences,
            spec: (engine.is_some() && rep.batched).then_some(rep.spec),
        })
    }

    /// Builds one shard's policy/scorer/fault stack — the single factory
    /// shared by [`Icgmm::run_sharded`] and [`Icgmm::serve`], so the
    /// offline replay and the serving front-end can never drift apart in
    /// what they instantiate per shard.
    #[allow(clippy::too_many_arguments)]
    fn shard_policies(
        &self,
        ctx: &ShardCtx<'_>,
        mode: PolicyMode,
        engine: Option<&GmmPolicyEngine>,
        threshold: f64,
        plan: FaultPlan,
        scorer_armed: bool,
        sinks: (
            &std::sync::Mutex<Vec<FaultSink>>,
            &std::sync::Mutex<Vec<AdaptSink>>,
        ),
    ) -> ShardPolicies {
        let (shard_sinks, adapt_sinks) = sinks;
        let sets = self.cfg.cache.num_sets();
        let ways = self.cfg.cache.ways;
        let eviction: Box<dyn icgmm_cache::EvictionPolicy + Send> = match mode {
            PolicyMode::Fifo => Box::new(FifoPolicy::new(sets, ways)),
            PolicyMode::Random => Box::new(RandomPolicy::new(self.cfg.em.seed)),
            PolicyMode::Lfu => Box::new(LfuPolicy::new(sets, ways)),
            PolicyMode::Belady => {
                // The oracle sees exactly this shard's subsequence:
                // its positions are the shard-local sequence
                // numbers the replay will present, order-isomorphic
                // to the global ones. Built straight off the shard's
                // indexed views — no subtrace materialization.
                Box::new(BeladyPolicy::from_pages(
                    ctx.warmup
                        .iter()
                        .chain(ctx.measured.iter())
                        .map(|r| r.page().raw()),
                    sets,
                    ways,
                ))
            }
            PolicyMode::GmmEvictionOnly | PolicyMode::GmmCachingEviction => {
                Box::new(self.score_eviction(sets, ways))
            }
            PolicyMode::Lru | PolicyMode::GmmCachingOnly => Box::new(LruPolicy::new(sets, ways)),
        };
        let admission: Box<dyn icgmm_cache::AdmissionPolicy + Send> = match mode {
            PolicyMode::GmmCachingOnly | PolicyMode::GmmCachingEviction => {
                Box::new(self.admission(threshold))
            }
            _ => Box::new(AlwaysAdmit),
        };
        // Each shard's engine clone optionally gains the online refit loop
        // (per-shard buffers, per-shard salted seeds, per-shard sink —
        // replaced wholesale on a supervisor re-replay, exactly like the
        // fault sink). Empty plans wrap nothing.
        let score = engine.map(|e| {
            if self.cfg.adapt.is_empty() {
                Box::new(e.clone()) as Box<dyn icgmm_cache::ScoreSource + Send>
            } else {
                let sink = AdaptSink::new();
                let adaptive = self.adaptive_engine(e.clone(), ctx.shard as u64, sink.clone());
                adapt_sinks.lock().expect("adapt sink lock never poisoned")[ctx.shard] = sink;
                Box::new(adaptive) as Box<dyn icgmm_cache::ScoreSource + Send>
            }
        });
        let (mut admission, mut eviction, mut score) = (admission, eviction, score);
        if score.is_some() && scorer_armed {
            let sink = FaultSink::new();
            let health = plan.monitor_armed().then(|| ScorerHealth::new(&plan));
            score = score.map(|s| {
                Box::new(FaultyScore::new(s, plan, health.clone(), sink.clone()))
                    as Box<dyn icgmm_cache::ScoreSource + Send>
            });
            if let Some(h) = &health {
                if matches!(
                    mode,
                    PolicyMode::GmmEvictionOnly | PolicyMode::GmmCachingEviction
                ) {
                    eviction = Box::new(FailoverEviction::new(
                        eviction,
                        Box::new(LruPolicy::new(sets, ways)),
                        h.clone(),
                        sink.clone(),
                    ));
                }
                if matches!(
                    mode,
                    PolicyMode::GmmCachingOnly | PolicyMode::GmmCachingEviction
                ) {
                    admission =
                        Box::new(FailoverAdmission::new(admission, h.clone(), sink.clone()));
                }
            }
            shard_sinks.lock().expect("sink lock never poisoned")[ctx.shard] = sink;
        }
        ShardPolicies {
            admission,
            eviction,
            score,
        }
    }

    /// Serves the (trimmed) trace through the concurrent
    /// [`icgmm_serve::CacheServer`]: `serve_clients` submitter threads
    /// feed `sim_shards` shard workers through bounded ingestion queues of
    /// depth `serve_queue_depth`, the workers decide at speculation speed,
    /// and a sequence-number merge re-accounts the outcome stream in
    /// global trace order — incrementally, in O(shards) memory.
    ///
    /// The semantic half of the returned [`ServeReport`] (`sim`,
    /// `scores_consumed`) is **bit-identical** to [`Icgmm::run_sharded`]
    /// over the same trace and mode — concurrency buys throughput and
    /// costs latency, never decisions (`tests/serve_differential.rs`
    /// holds the line). On top, the report carries what an offline replay
    /// cannot measure: requests/sec at saturation and p50/p99
    /// admission-decision latencies.
    ///
    /// The configuration's [`icgmm_cache::FaultPlan`] plugs in unchanged:
    /// shard-worker panics are supervisor-recovered mid-service, scorer
    /// faults ride each worker's [`FaultyScore`] wrapper with the health
    /// monitor and failover policies, and the speculation breaker guards
    /// batched workers. (Scorer-fault runs are routed to the streaming
    /// engine: injection interacts with speculative dense scoring, whose
    /// window boundaries serving necessarily cuts differently.)
    ///
    /// # Errors
    ///
    /// As for [`Icgmm::run_sharded`] (including the `Random`-above-one-
    /// shard rejection), plus [`IcgmmError::ShardFailed`] when a shard
    /// worker dies *and* the supervisor's re-replay dies too.
    pub fn serve(&self, trace: &Trace, mode: PolicyMode) -> Result<ServeReport, IcgmmError> {
        self.serve_with_latency(trace, mode, &self.cfg.latency)
    }

    /// [`Icgmm::serve`] with an explicit latency model (SSD sweeps).
    ///
    /// # Errors
    ///
    /// As for [`Icgmm::serve`].
    pub fn serve_with_latency(
        &self,
        trace: &Trace,
        mode: PolicyMode,
        latency: &LatencyModel,
    ) -> Result<ServeReport, IcgmmError> {
        let shards = self.cfg.sim_shards;
        if shards > 1 && mode == PolicyMode::Random {
            return Err(IcgmmError::Config(format!(
                "random eviction is not shard-deterministic; serve it at sim_shards = 1 \
                 (requested {shards})"
            )));
        }
        let (warmup, measured) = self.phases(trace);
        let engine = if mode.uses_gmm() {
            Some(self.policy_engine()?)
        } else {
            None
        };
        let threshold = self.model.as_ref().map(|m| m.threshold).unwrap_or(0.0);
        let plan = self.cfg.fault;
        let scorer_armed = plan.scorer_armed() || plan.monitor_armed();
        let shard_sinks = std::sync::Mutex::new(vec![FaultSink::new(); shards]);
        let adapt_sinks = std::sync::Mutex::new(vec![AdaptSink::new(); shards]);
        let server = CacheServer::new(ServeConfig {
            shards,
            clients: self.cfg.serve_clients,
            queue_depth: self.cfg.serve_queue_depth,
            completion_depth: self.cfg.serve_completion_depth,
            params: self.cfg.spec_params(),
            fault: plan,
            ..ServeConfig::default()
        })?;
        let mut rep = server.serve(
            warmup,
            measured,
            self.cfg.cache,
            &|ctx| {
                self.shard_policies(ctx, mode, engine.as_ref(), threshold, plan, scorer_armed, {
                    (&shard_sinks, &adapt_sinks)
                })
            },
            latency,
            None,
        )?;
        // Scorer-fault and adaptation telemetry travel by sink, exactly as
        // offline — merged in shard order for determinism.
        for sink in shard_sinks
            .into_inner()
            .expect("no worker holds the sink lock")
        {
            rep.sim.fault.merge(&sink.snapshot());
        }
        for sink in adapt_sinks
            .into_inner()
            .expect("no worker holds the adapt sink lock")
        {
            rep.sim.adapt.merge(&sink.snapshot());
        }
        Ok(rep)
    }

    /// Runs one mode through the cycle-approximate dataflow hardware model
    /// instead of the analytic latency constants.
    ///
    /// Host replay follows the same routing as [`Icgmm::run`]: engines at
    /// paper-scale K ([`icgmm_cache::ScoreSource::prefers_batching`]) ride
    /// the speculative miss-window batcher with this configuration's
    /// `sim_window`/`sim_window_floor`/`sim_stream_miss_div` knobs, small-K
    /// engines and score-free modes stream. The modeled timing is
    /// bit-identical either way; [`DataflowReport::spec`] carries the
    /// speculation telemetry of batched runs.
    ///
    /// # Errors
    ///
    /// As for [`Icgmm::run`].
    pub fn run_dataflow(
        &self,
        trace: &Trace,
        mode: PolicyMode,
        config: &DataflowConfig,
    ) -> Result<DataflowReport, IcgmmError> {
        let (warmup, measured) = self.phases(trace);
        let sets = self.cfg.cache.num_sets();
        let ways = self.cfg.cache.ways;
        let mut engine = if mode.uses_gmm() {
            Some(self.policy_engine()?)
        } else {
            None
        };
        let threshold = self.model.as_ref().map(|m| m.threshold).unwrap_or(0.0);
        let use_batched = engine
            .as_ref()
            .is_some_and(icgmm_cache::ScoreSource::prefers_batching);
        let params = self.cfg.spec_params();

        // This configuration's fault plan rides along unless the dataflow
        // config armed its own: device faults and the circuit breaker act
        // inside the hardware model, scorer faults and policy failover are
        // wired here, and everything lands in the report's fault block.
        let effective;
        let config = if config.fault.is_empty() && !self.cfg.fault.is_empty() {
            effective = DataflowConfig {
                fault: self.cfg.fault,
                ..config.clone()
            };
            &effective
        } else {
            config
        };
        let plan = config.fault;
        let sink = FaultSink::new();
        let health = (engine.is_some() && plan.monitor_armed()).then(|| ScorerHealth::new(&plan));
        let mut faulty = if engine.is_some() && (plan.scorer_armed() || health.is_some()) {
            engine
                .take()
                .map(|e| FaultyScore::new(e, plan, health.clone(), sink.clone()))
        } else {
            None
        };
        let score: Option<&mut dyn icgmm_cache::ScoreSource> = match faulty.as_mut() {
            Some(f) => Some(f),
            None => engine
                .as_mut()
                .map(|e| e as &mut dyn icgmm_cache::ScoreSource),
        };
        let wrap_ev = |primary: GmmScorePolicy| -> Box<dyn icgmm_cache::EvictionPolicy + Send> {
            match &health {
                Some(h) => Box::new(FailoverEviction::new(
                    Box::new(primary),
                    Box::new(LruPolicy::new(sets, ways)),
                    h.clone(),
                    sink.clone(),
                )),
                None => Box::new(primary),
            }
        };
        let wrap_adm = |primary: ThresholdAdmit| -> Box<dyn icgmm_cache::AdmissionPolicy + Send> {
            match &health {
                Some(h) => Box::new(FailoverAdmission::new(
                    Box::new(primary),
                    h.clone(),
                    sink.clone(),
                )),
                None => Box::new(primary),
            }
        };
        let cache_cfg = self.cfg.cache;
        let go = |adm: &mut dyn icgmm_cache::AdmissionPolicy,
                  ev: &mut dyn icgmm_cache::EvictionPolicy,
                  score: Option<&mut dyn icgmm_cache::ScoreSource>|
         -> Result<DataflowReport, IcgmmError> {
            Ok(if use_batched {
                icgmm_hw::run_dataflow_batched_with_warmup(
                    warmup, measured, cache_cfg, adm, ev, score, config, params,
                )?
            } else {
                icgmm_hw::run_dataflow_streaming_with_warmup(
                    warmup, measured, cache_cfg, adm, ev, score, config,
                )?
            })
        };
        let mut report = match mode {
            PolicyMode::Lru | PolicyMode::Fifo | PolicyMode::Random | PolicyMode::Lfu => {
                let mut ev: Box<dyn icgmm_cache::EvictionPolicy> = match mode {
                    PolicyMode::Fifo => Box::new(FifoPolicy::new(sets, ways)),
                    PolicyMode::Random => Box::new(RandomPolicy::new(self.cfg.em.seed)),
                    PolicyMode::Lfu => Box::new(LfuPolicy::new(sets, ways)),
                    _ => Box::new(LruPolicy::new(sets, ways)),
                };
                go(&mut AlwaysAdmit, ev.as_mut(), None)
            }
            PolicyMode::Belady => {
                let end = warmup.len() + measured.len();
                let mut ev = BeladyPolicy::from_records(&trace.records()[..end], sets, ways);
                go(&mut AlwaysAdmit, &mut ev, None)
            }
            PolicyMode::GmmCachingOnly => {
                let mut adm = wrap_adm(self.admission(threshold));
                go(adm.as_mut(), &mut LruPolicy::new(sets, ways), score)
            }
            PolicyMode::GmmEvictionOnly => {
                let mut ev = wrap_ev(self.score_eviction(sets, ways));
                go(&mut AlwaysAdmit, ev.as_mut(), score)
            }
            PolicyMode::GmmCachingEviction => {
                let mut adm = wrap_adm(self.admission(threshold));
                let mut ev = wrap_ev(self.score_eviction(sets, ways));
                go(adm.as_mut(), ev.as_mut(), score)
            }
        }?;
        report.fault.merge(&sink.snapshot());
        Ok(report)
    }

    /// Wraps one engine clone in the online refit loop described by
    /// `self.cfg.adapt` (callers check [`icgmm_cache::AdaptPlan::is_empty`]
    /// first). `shard` salts the plan seed so each shard draws independent
    /// reservoir and re-seed streams.
    fn adaptive_engine(&self, engine: GmmPolicyEngine, shard: u64, sink: AdaptSink) -> AdaptiveEngine {
        let model = self
            .model
            .as_ref()
            .expect("a GMM engine implies a trained model");
        AdaptiveEngine::new(
            engine,
            &model.gmm,
            self.cfg.em,
            &self.cfg.preprocess,
            self.cfg.adapt,
            shard,
            sink,
        )
        .expect("adapt plan is validated at configuration time")
    }

    fn score_eviction(&self, sets: usize, ways: usize) -> GmmScorePolicy {
        if self.cfg.eviction_hit_bonus > 0.0 {
            GmmScorePolicy::with_hit_bonus(sets, ways, self.cfg.eviction_hit_bonus)
        } else {
            GmmScorePolicy::new(sets, ways)
        }
    }

    fn admission(&self, threshold: f64) -> ThresholdAdmit {
        ThresholdAdmit {
            threshold,
            admit_writes_always: self.cfg.admit_writes_always,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_cache::CacheConfig;
    use icgmm_gmm::EmConfig;
    use icgmm_trace::synth::WorkloadKind;
    use icgmm_trace::PreprocessConfig;

    /// A small config that trains in milliseconds.
    fn small_cfg() -> IcgmmConfig {
        IcgmmConfig {
            cache: CacheConfig {
                capacity_bytes: 256 * 4096,
                block_bytes: 4096,
                ways: 8,
            },
            em: EmConfig {
                k: 16,
                max_iters: 20,
                ..Default::default()
            },
            preprocess: PreprocessConfig {
                len_window: 32,
                len_access_shot: 1_000,
                ..Default::default()
            },
            max_train_cells: 20_000,
            ..Default::default()
        }
    }

    #[test]
    fn gmm_modes_require_fit() {
        let sys = Icgmm::new(small_cfg()).unwrap();
        let trace = WorkloadKind::Memtier.default_workload().generate(5_000, 1);
        let err = sys.run(&trace, PolicyMode::GmmCachingOnly).unwrap_err();
        assert!(matches!(err, IcgmmError::NotFitted));
        // Score-free modes work untrained.
        assert!(sys.run(&trace, PolicyMode::Lru).is_ok());
        assert!(sys.run(&trace, PolicyMode::Belady).is_ok());
    }

    #[test]
    fn fit_then_run_all_fig6_modes() {
        let mut sys = Icgmm::new(small_cfg()).unwrap();
        let trace = WorkloadKind::Memtier.default_workload().generate(60_000, 2);
        let fit = sys.fit(&trace).unwrap().clone();
        assert!(fit.cells_trained > 0);
        assert!(fit.cells_trained <= fit.cells_total);
        assert!(fit.threshold.is_finite());

        for mode in PolicyMode::fig6_modes() {
            let rep = sys.run(&trace, mode).unwrap();
            assert_eq!(rep.mode, mode);
            assert!(rep.sim.stats.accesses() > 0);
            if mode.uses_gmm() {
                assert!(rep.gmm_inferences > 0, "{mode} did not use the engine");
            } else {
                assert_eq!(rep.gmm_inferences, 0);
            }
        }
    }

    #[test]
    fn belady_bounds_every_other_policy() {
        let mut sys = Icgmm::new(small_cfg()).unwrap();
        let trace = WorkloadKind::Memtier.default_workload().generate(50_000, 3);
        sys.fit(&trace).unwrap();
        let belady = sys.run(&trace, PolicyMode::Belady).unwrap();
        for mode in [
            PolicyMode::Lru,
            PolicyMode::Fifo,
            PolicyMode::GmmEvictionOnly,
        ] {
            let rep = sys.run(&trace, mode).unwrap();
            assert!(
                belady.miss_rate_pct() <= rep.miss_rate_pct() + 1e-9,
                "belady {} vs {mode} {}",
                belady.miss_rate_pct(),
                rep.miss_rate_pct()
            );
        }
    }

    #[test]
    fn sim_window_does_not_change_results() {
        // W = 1 degenerates to per-request speculation; W = default batches
        // thousands of requests. The SimReport must be bit-identical, with
        // speculation telemetry present for GMM modes only.
        let mut small = small_cfg();
        let mut wide = small_cfg();
        // K >= 64 so the engine prefers the batched path (small-K engines
        // route to streaming — see `GmmPolicyEngine::prefers_batching`).
        small.em.k = 64;
        wide.em.k = 64;
        small.sim_window = 1;
        wide.sim_window = 4096;
        let trace = WorkloadKind::Memtier.default_workload().generate(40_000, 9);
        let mut sys_small = Icgmm::new(small).unwrap();
        let mut sys_wide = Icgmm::new(wide).unwrap();
        sys_small.fit(&trace).unwrap();
        sys_wide.fit(&trace).unwrap();
        for mode in [PolicyMode::Lru, PolicyMode::GmmCachingEviction] {
            let a = sys_small.run(&trace, mode).unwrap();
            let b = sys_wide.run(&trace, mode).unwrap();
            assert_eq!(a.sim, b.sim, "{mode}");
            if mode.uses_gmm() {
                let spec = b.spec.expect("gmm modes speculate");
                assert!(spec.batched_scores > 0, "{spec:?}");
            } else {
                assert!(a.spec.is_none() && b.spec.is_none());
            }
        }
    }

    #[test]
    fn dataflow_sim_window_does_not_change_results() {
        // The dataflow model rides the batched replay engine at paper-scale
        // K; the speculation depth is a host-side economics knob and must
        // leave every modeled quantity — stats and all timing fields —
        // bit-identical.
        let mut narrow = small_cfg();
        let mut wide = small_cfg();
        narrow.em.k = 64;
        wide.em.k = 64;
        narrow.sim_window = 1;
        wide.sim_window = 4096;
        let trace = WorkloadKind::Memtier
            .default_workload()
            .generate(30_000, 11);
        let mut sys_narrow = Icgmm::new(narrow).unwrap();
        sys_narrow.fit(&trace).unwrap();
        let mut sys_wide = Icgmm::new(wide).unwrap();
        sys_wide.set_model(sys_narrow.model().expect("fitted").clone());
        let cfg = DataflowConfig::default();
        let a = sys_narrow
            .run_dataflow(&trace, PolicyMode::GmmCachingEviction, &cfg)
            .unwrap();
        let b = sys_wide
            .run_dataflow(&trace, PolicyMode::GmmCachingEviction, &cfg)
            .unwrap();
        assert!(a.spec.is_some() && b.spec.is_some(), "K=64 must batch");
        let (mut a2, mut b2) = (a.clone(), b.clone());
        a2.spec = None;
        b2.spec = None;
        assert_eq!(a2, b2, "sim_window must not change the dataflow report");
        // Score-free modes keep the streaming engine (no telemetry).
        let lru = sys_narrow
            .run_dataflow(&trace, PolicyMode::Lru, &cfg)
            .unwrap();
        assert!(lru.spec.is_none());
    }

    #[test]
    fn run_sharded_is_bit_identical_to_run_for_every_mode_and_shard_count() {
        let mut base = small_cfg();
        base.em.k = 64; // engine prefers the batched path
        let trace = WorkloadKind::Memtier
            .default_workload()
            .generate(30_000, 17);
        let mut reference_sys = Icgmm::new(base).unwrap();
        reference_sys.fit(&trace).unwrap();
        let model = reference_sys.model().expect("fitted").clone();
        let modes = [
            PolicyMode::Lru,
            PolicyMode::Fifo,
            PolicyMode::Lfu,
            PolicyMode::Belady,
            PolicyMode::GmmCachingOnly,
            PolicyMode::GmmEvictionOnly,
            PolicyMode::GmmCachingEviction,
        ];
        for mode in modes {
            let reference = reference_sys.run(&trace, mode).unwrap();
            for shards in [1usize, 2, 4, 8] {
                let mut cfg = base;
                cfg.sim_shards = shards;
                let mut sys = Icgmm::new(cfg).unwrap();
                sys.set_model(model.clone());
                let sharded = sys.run_sharded(&trace, mode).unwrap();
                assert_eq!(
                    reference.sim, sharded.sim,
                    "{mode} diverged at {shards} shards"
                );
                if shards == 1 {
                    // One shard replays the whole trace through the same
                    // engine: telemetry and inference counts are exact.
                    assert_eq!(reference.spec, sharded.spec, "{mode}");
                    assert_eq!(reference.gmm_inferences, sharded.gmm_inferences, "{mode}");
                }
                if mode.uses_gmm() {
                    assert!(sharded.gmm_inferences > 0, "{mode} at {shards} shards");
                }
            }
        }
    }

    #[test]
    fn run_sharded_rejects_random_above_one_shard() {
        let mut cfg = small_cfg();
        cfg.sim_shards = 2;
        let sys = Icgmm::new(cfg).unwrap();
        let trace = WorkloadKind::Memtier.default_workload().generate(5_000, 1);
        assert!(matches!(
            sys.run_sharded(&trace, PolicyMode::Random),
            Err(IcgmmError::Config(_))
        ));
        // At one shard Random replays exactly like `run`.
        let sys1 = Icgmm::new(small_cfg()).unwrap();
        let a = sys1.run(&trace, PolicyMode::Random).unwrap();
        let b = sys1.run_sharded(&trace, PolicyMode::Random).unwrap();
        assert_eq!(a.sim, b.sim);
    }

    #[test]
    fn empty_trace_fit_fails_cleanly() {
        let mut sys = Icgmm::new(small_cfg()).unwrap();
        assert!(matches!(
            sys.fit(&Trace::new()),
            Err(IcgmmError::EmptyTrace)
        ));
    }

    #[test]
    fn dataflow_and_analytic_agree_functionally() {
        let mut sys = Icgmm::new(small_cfg()).unwrap();
        let trace = WorkloadKind::Memtier.default_workload().generate(30_000, 4);
        sys.fit(&trace).unwrap();
        let a = sys.run(&trace, PolicyMode::GmmCachingEviction).unwrap();
        let d = sys
            .run_dataflow(
                &trace,
                PolicyMode::GmmCachingEviction,
                &DataflowConfig::default(),
            )
            .unwrap();
        assert_eq!(a.sim.stats, d.stats, "functional divergence");
        let rel = (d.avg_request_us - a.avg_us()).abs() / a.avg_us().max(1e-9);
        assert!(rel < 0.05, "latency divergence {rel}");
    }

    #[test]
    fn fixed_point_mode_runs_and_stays_close() {
        let mut cfg = small_cfg();
        let trace = WorkloadKind::Memtier.default_workload().generate(40_000, 5);
        let mut f64_sys = Icgmm::new(cfg).unwrap();
        f64_sys.fit(&trace).unwrap();
        cfg.fixed_point_inference = true;
        let mut fx_sys = Icgmm::new(cfg).unwrap();
        fx_sys.fit(&trace).unwrap();
        let a = f64_sys.run(&trace, PolicyMode::GmmCachingEviction).unwrap();
        let b = fx_sys.run(&trace, PolicyMode::GmmCachingEviction).unwrap();
        // Quantization may flip a few marginal decisions, not the outcome.
        assert!(
            (a.miss_rate_pct() - b.miss_rate_pct()).abs() < 1.0,
            "f64 {} vs fixed {}",
            a.miss_rate_pct(),
            b.miss_rate_pct()
        );
    }
}
