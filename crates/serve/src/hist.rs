//! Log-bucketed latency histogram for admission-decision latencies.
//!
//! Serving latencies span five-plus decades (sub-microsecond queue hops
//! to multi-millisecond backpressure stalls), so fixed-width buckets
//! either blow up memory or lose the tail. This histogram buckets by
//! value magnitude: 16 sub-buckets per octave (≤ ~6 % relative bucket
//! width), values below 16 ns exact. Quantiles report each bucket's
//! upper bound, so `p99` never under-states the tail.
//!
//! # Rounding direction, end to end
//!
//! Every approximation in the admission-latency pipeline rounds the
//! *same way — up*, so reported percentiles are honest upper bounds:
//!
//! * **Submit stamps** are taken once per flush-run, when a batch leaves
//!   its client's per-shard buffer for the transport (before any
//!   full-queue wait). Sharing one clock read across the batch starts
//!   every record's clock at the earliest record's instant, which can
//!   only lengthen the others' measured latency. Client-buffer dwell is
//!   deliberately *excluded*: with per-shard buffers a record can sit
//!   buffered for an unbounded stretch of foreign-shard traffic, which
//!   is a transport-batching artifact, not admission queueing — while
//!   blocking backpressure (stamped before the wait) is real queueing
//!   and *is* included.
//! * **Flush stamps** on the worker side are likewise shared: every
//!   outcome of a flushed batch is charged the flush instant of the
//!   batch's *last* record, rounding each earlier record's latency up.
//! * **Buckets** absorb up to ~6 % relative error, and quantiles report
//!   the holding bucket's upper bound — again never under-stating.

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution: 2^4 = 16 sub-buckets per octave.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Exact buckets `0..SUB`, then 16 per octave for the remaining
/// `64 - SUB_BITS` octaves of a `u64`.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Mergeable log-bucketed histogram of nanosecond latencies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // msb >= SUB_BITS
    let sub = ((v >> (msb - SUB_BITS as usize)) - SUB as u64) as usize;
    (msb - SUB_BITS as usize) * SUB + SUB + sub
}

/// Largest value mapping to bucket `b` — the value quantiles report.
fn bucket_upper(b: usize) -> u64 {
    if b < SUB {
        return b as u64;
    }
    let exp = (b - SUB) / SUB;
    let sub = ((b - SUB) % SUB) as u64;
    // The topmost bucket's exclusive bound is 2^64; saturate it.
    match (SUB as u64 + sub + 1).checked_shl(exp as u32) {
        Some(bound) if bound != 0 => bound - 1,
        _ => u64::MAX,
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }

    /// Records one latency sample, in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds — the upper bound
    /// of the bucket holding the rank-`⌈q·n⌉` sample (0 when empty).
    ///
    /// Out-of-range arguments are clamped rather than left
    /// implementation-defined: `q < 0.0` reports the minimum (rank-1)
    /// sample, `q > 1.0` the maximum, and `NaN` is treated as `0.0` — a
    /// NaN quantile request carries no ordering information, so the
    /// conservative minimum is reported instead of whatever the cast
    /// would produce.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// [`LatencyHistogram::quantile_ns`] converted to microseconds (same
    /// clamping of out-of-range and NaN `q`).
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.quantile_ns(q) as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0;
        for v in 0..100_000u64 {
            let b = bucket_of(v);
            assert!(b == prev || b == prev + 1, "bucket jump at {v}");
            assert!(v <= bucket_upper(b), "v {v} above its bucket upper");
            prev = b;
        }
        // Bucket upper bounds invert the mapping.
        for b in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_upper(b)), b, "upper of {b} maps back");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 7, 15] {
            h.record_ns(v);
        }
        assert_eq!(h.quantile_ns(0.0), 0);
        assert_eq!(h.quantile_ns(1.0), 15);
        assert_eq!(h.samples(), 4);
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record_ns(v);
        }
        let p50 = h.quantile_ns(0.50) as f64;
        let p99 = h.quantile_ns(0.99) as f64;
        // Upper-bound reporting: never below the true quantile, and at
        // most one bucket (~6 %) above it.
        assert!((50_000.0..=53_200.0).contains(&p50), "p50 {p50}");
        assert!((99_000.0..=105_400.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in 0..1_000u64 {
            let sample = v * v % 7_777;
            if v % 2 == 0 {
                a.record_ns(sample);
            } else {
                b.record_ns(sample);
            }
            both.record_ns(sample);
        }
        a.merge(&b);
        assert_eq!(a.samples(), both.samples());
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile_ns(q), both.quantile_ns(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.quantile_us(0.99), 0.0);
    }

    /// Out-of-range and NaN quantile arguments are clamped to the
    /// documented behavior instead of being implementation-defined.
    #[test]
    fn out_of_range_quantiles_are_clamped() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 7, 11, 15] {
            h.record_ns(v);
        }
        let min = h.quantile_ns(0.0);
        let max = h.quantile_ns(1.0);
        assert_eq!(min, 3);
        assert_eq!(max, 15);
        assert_eq!(h.quantile_ns(-0.5), min, "q < 0 clamps to the minimum");
        assert_eq!(h.quantile_ns(f64::NEG_INFINITY), min);
        assert_eq!(h.quantile_ns(1.5), max, "q > 1 clamps to the maximum");
        assert_eq!(h.quantile_ns(f64::INFINITY), max);
        assert_eq!(h.quantile_ns(f64::NAN), min, "NaN reports the minimum");
        assert_eq!(h.quantile_us(f64::NAN), min as f64 / 1_000.0);
        // An empty histogram still reports zero for every argument.
        let empty = LatencyHistogram::new();
        for q in [-1.0, 0.5, 2.0, f64::NAN] {
            assert_eq!(empty.quantile_ns(q), 0);
        }
    }

    /// Boundary values round-trip `bucket_of`/`bucket_upper`: the exact
    /// range's edges, the first bucketed value, exact powers of two
    /// across the full width, and saturation at `u64::MAX`.
    #[test]
    fn boundary_values_round_trip() {
        // Exact range: 0..16 each own a bucket whose upper is the value.
        for v in [0u64, 1, 15] {
            assert_eq!(bucket_upper(bucket_of(v)), v);
        }
        // 16 is the first approximated value: first sub-bucket of the
        // first octave, upper bound 16 (width-1 bucket at this octave).
        assert_eq!(bucket_of(16), SUB);
        assert_eq!(bucket_upper(SUB), 16);
        // Exact powers of two open a fresh sub-bucket in every octave.
        for e in SUB_BITS..64 {
            let v = 1u64 << e;
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b), "2^{e} above its bucket upper");
            assert!(b > bucket_of(v - 1), "2^{e} shares a bucket with 2^{e}-1");
        }
        // The top of the range saturates instead of wrapping: u64::MAX
        // lands in the last bucket, whose upper bound is u64::MAX.
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_of(bucket_upper(BUCKETS - 1)), BUCKETS - 1);
    }

    /// Bucketed quantiles never under-state: for every probe quantile of
    /// a deterministic pseudo-random sample set, the histogram's answer
    /// is >= the exact order-statistic.
    #[test]
    fn quantiles_never_under_state() {
        let mut h = LatencyHistogram::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Spread over ~6 decades, including the exact range.
            let v = x % 10u64.pow(1 + (x >> 60) as u32 % 6);
            samples.push(v);
            h.record_ns(v);
        }
        samples.sort_unstable();
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            assert!(
                h.quantile_ns(q) >= exact,
                "q={q}: reported {} under-states exact {exact}",
                h.quantile_ns(q)
            );
        }
    }

    /// Merge is associative and commutative: any grouping of per-worker
    /// histograms yields the same quantiles.
    #[test]
    fn merge_is_associative() {
        let mk = |seed: u64| {
            let mut h = LatencyHistogram::new();
            let mut x = seed;
            for _ in 0..800 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(seed | 1);
                h.record_ns(x % 1_000_000);
            }
            h
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // c + (b + a) — commuted grouping.
        let mut ba = b.clone();
        ba.merge(&a);
        let mut comm = c.clone();
        comm.merge(&ba);
        assert_eq!(left.samples(), right.samples());
        assert_eq!(left.samples(), comm.samples());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(left.quantile_ns(q), right.quantile_ns(q));
            assert_eq!(left.quantile_ns(q), comm.quantile_ns(q));
        }
    }
}
