//! Serving configuration and error types.

use std::fmt;

use icgmm_cache::{FaultPlan, ShardRouting, SpecParams};
use serde::{Deserialize, Serialize};

/// What a client does when its shard's ingestion queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubmitMode {
    /// Block until the queue drains — classic backpressure. No request is
    /// ever dropped; the wait shows up in the admission-latency
    /// percentiles instead.
    #[default]
    Block,
    /// Count a shed, then submit anyway (blocking). The service tracks
    /// how often it *would* have dropped ([`crate::ServeReport::sheds`])
    /// while still replaying every request, so the merged report stays
    /// comparable to the offline reference.
    Shed,
}

/// Configuration of a [`crate::CacheServer`].
///
/// The shard partitioning, speculation parameters and routing mirror
/// [`icgmm_cache::ShardedSimulator`] exactly — a served trace re-accounts
/// bit-identically to the offline sharded replay of the same inputs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Shard (worker thread) count, `>= 1`. Sets are partitioned
    /// `set mod shards`, exactly like the offline sharded replay.
    pub shards: usize,
    /// Client (submitter thread) count, `>= 1`. Shard `s` is owned by
    /// client `s % min(clients, shards)`; clients beyond the shard count
    /// would own nothing and are capped away.
    pub clients: usize,
    /// Bound of every ingestion and outcome queue, `>= 1`. Small depths
    /// exercise backpressure; large depths amortize hand-off cost.
    pub queue_depth: usize,
    /// Full-queue behavior (see [`SubmitMode`]).
    pub submit: SubmitMode,
    /// How scored shard workers replay (see [`ShardRouting`]). Workers
    /// fall back to [`ShardRouting::Streaming`] whenever the fault plan
    /// arms scorer faults or the health monitor: those fault decisions
    /// are window-boundary-sensitive, and serving windows cut at
    /// ingestion boundaries rather than the offline batcher's.
    pub routing: ShardRouting,
    /// Speculation parameters for batched workers (window size doubles as
    /// the per-chunk ingestion drain bound).
    pub params: SpecParams,
    /// Deterministic fault plan: shard-worker panic points (supervisor-
    /// recovered), scorer faults, the health monitor and the speculation
    /// breaker all plug in unchanged from the offline engine.
    pub fault: FaultPlan,
    /// Graceful-shutdown point: stop accepting after this many requests
    /// (warm-up + measured, trace order), then drain and join. The report
    /// equals an offline replay of the truncated trace. `None` serves
    /// everything.
    pub stop_after: Option<u64>,
    /// Depth of each worker's simulated backend-completion queue, `>= 1`:
    /// how many modeled SSD accesses may be in flight before the next
    /// admission decision stalls on the oldest completion. Depth 1
    /// serializes consecutive misses exactly like the inline charge (the
    /// PR 7 behavior — only hit decisions can hide under the lone
    /// in-flight op); deeper queues overlap admission decisions with
    /// in-flight modeled misses and report the saving in
    /// [`crate::OverlapStats`]. Pure telemetry — replay outcomes never
    /// depend on it.
    pub completion_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            clients: 1,
            queue_depth: 256,
            submit: SubmitMode::Block,
            routing: ShardRouting::Auto,
            params: SpecParams::default(),
            fault: FaultPlan::default(),
            stop_after: None,
            completion_depth: 8,
        }
    }
}

impl ServeConfig {
    /// Validates the thread and queue geometry and the fault plan.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.shards == 0 {
            return Err(ServeError::Config("shard count must be >= 1".into()));
        }
        if self.clients == 0 {
            return Err(ServeError::Config("client count must be >= 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::Config("queue depth must be >= 1".into()));
        }
        if self.completion_depth == 0 {
            return Err(ServeError::Config("completion depth must be >= 1".into()));
        }
        self.fault.validate().map_err(ServeError::Config)?;
        Ok(())
    }
}

/// Serving failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Invalid [`ServeConfig`] or cache geometry.
    Config(String),
    /// The trace does not fit the shard fan-out's `u32` position index
    /// (mirrors [`icgmm_cache::ShardRunError::TraceTooLong`]).
    TraceTooLong {
        /// Total records (warm-up + measured) the caller presented.
        records: usize,
    },
    /// A shard worker died *and* the supervisor's offline re-replay of
    /// its subtrace died too — the one non-recoverable fault class (a
    /// lone worker panic is recovered transparently).
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
        /// Panic payload description.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::TraceTooLong { records } => write!(
                f,
                "trace too long for u32 index-based fan-out ({records} records)"
            ),
            ServeError::ShardFailed { shard, message } => {
                write!(f, "shard {shard} failed beyond recovery: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_geometry_is_rejected() {
        for cfg in [
            ServeConfig {
                shards: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                clients: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_depth: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                completion_depth: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(matches!(cfg.validate(), Err(ServeError::Config(_))));
        }
    }

    #[test]
    fn errors_display_their_context() {
        let e = ServeError::ShardFailed {
            shard: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("shard 3"));
        assert!(ServeError::Config("x".into())
            .to_string()
            .contains("invalid"));
    }
}
