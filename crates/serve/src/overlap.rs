//! Simulated backend-completion queue: the serving analogue of the
//! dataflow model's `overlap_saved_us`.
//!
//! The analytic [`LatencyModel`] charges each miss its full modeled
//! service time — policy-engine inference plus the SSD page access —
//! *inline*, as if the shard worker sat on the backend until the page
//! arrived. A real device front-end does not: it issues the backend
//! access into a bounded completion queue and keeps deciding admissions
//! for later requests while earlier misses are still in flight.
//!
//! [`CompletionQueue`] models exactly that, per shard worker, on a
//! modeled-microsecond timeline that is entirely decoupled from host
//! wall-clock (and therefore deterministic):
//!
//! * every decided request advances the worker's *decision clock* by its
//!   decision cost (DRAM-cache hit service for hits, policy-engine
//!   inference for misses);
//! * a miss additionally *issues* a backend operation — SSD read, plus
//!   the dirty-victim write-back when one is evicted — whose completion
//!   lands `backend_us` after the issue point (at the decision's start
//!   when [`LatencyModel::overlap_policy_with_ssd`] holds, after it
//!   otherwise);
//! * at most `depth` backend operations may be in flight; issuing into a
//!   full queue first **retires the oldest completion in sequence-number
//!   order** (completions re-join the decided stream by `seq`, never out
//!   of order) and stalls the decision clock until that slot frees;
//! * the run's overlapped makespan is the later of the decision clock and
//!   the last in-order retirement.
//!
//! The difference between the inline total and the overlapped makespan is
//! the modeled time the completion queue saved — [`OverlapStats::
//! overlap_saved_us`]. At `depth == 1` the queue degenerates to the
//! inline model exactly (a new backend access waits out the previous
//! one), which the unit tests pin down.
//!
//! The model is pure telemetry: it never touches replay decisions, so the
//! served report's semantic half stays bit-identical to the offline
//! replay engines.

use std::collections::VecDeque;

use icgmm_cache::{AccessOutcome, LatencyModel};
use icgmm_trace::Op;
use serde::{Deserialize, Serialize};

/// Overlap telemetry of one serving session (field-wise merge of the
/// per-worker completion queues; supervisor-recovered shards contribute
/// zero, like [`icgmm_cache::SpecStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OverlapStats {
    /// Modeled backend (SSD) operations retired through the completion
    /// queue — one per measured miss, inserted or bypassed.
    pub backend_completions: u64,
    /// High-water mark of in-flight modeled completions (max across
    /// workers; bounded by the configured completion depth).
    pub backend_inflight_peak: u64,
    /// Modeled time the run would cost charging each miss inline, µs
    /// (summed across workers — per-worker timelines, not wall-clock).
    pub modeled_inline_us: f64,
    /// Modeled makespan with backend completions overlapped, µs (summed
    /// across workers).
    pub modeled_overlapped_us: f64,
    /// `modeled_inline_us - modeled_overlapped_us`: the modeled time the
    /// completion queue saved by overlapping admission decisions with
    /// in-flight backend misses.
    pub overlap_saved_us: f64,
}

impl OverlapStats {
    /// Field-wise accumulation (sums; peak takes the max).
    pub fn merge(&mut self, other: &OverlapStats) {
        self.backend_completions += other.backend_completions;
        self.backend_inflight_peak = self.backend_inflight_peak.max(other.backend_inflight_peak);
        self.modeled_inline_us += other.modeled_inline_us;
        self.modeled_overlapped_us += other.modeled_overlapped_us;
        self.overlap_saved_us += other.overlap_saved_us;
    }
}

/// Splits one decided request's modeled service into its decision cost
/// (what occupies the worker) and its backend cost (what the completion
/// queue can overlap). Recombining under the [`LatencyModel`]'s overlap
/// flag reproduces [`LatencyModel::request_us`] exactly — the consistency
/// test below holds the two models together.
fn service_split(lat: &LatencyModel, op: Op, outcome: &AccessOutcome) -> (f64, f64) {
    match outcome {
        AccessOutcome::Hit { .. } => (lat.hit_us, 0.0),
        AccessOutcome::MissInserted { evicted, .. } => {
            let mut backend = lat.ssd_read_us;
            if let Some(e) = evicted {
                if e.dirty {
                    backend += lat.ssd_write_us;
                }
            }
            (lat.policy_engine_us, backend)
        }
        AccessOutcome::MissBypassed => {
            let backend = match op {
                Op::Read => lat.ssd_read_us,
                Op::Write => lat.ssd_write_us,
            };
            (lat.policy_engine_us, backend)
        }
    }
}

/// One shard worker's simulated completion queue (see the module docs).
#[derive(Clone, Debug)]
pub(crate) struct CompletionQueue {
    depth: usize,
    lat: LatencyModel,
    /// Completion times of in-flight backend operations, in issue (and
    /// hence sequence-number) order.
    inflight: VecDeque<f64>,
    /// The worker's modeled decision clock, µs.
    now_us: f64,
    /// In-sequence-order retirement frontier: a completion retires at
    /// `max(its completion time, every earlier completion's retirement)`.
    retired_us: f64,
    inline_us: f64,
    completions: u64,
    peak: usize,
}

impl CompletionQueue {
    pub(crate) fn new(depth: usize, lat: LatencyModel) -> Self {
        assert!(depth >= 1, "completion depth must be >= 1");
        CompletionQueue {
            depth,
            lat,
            inflight: VecDeque::with_capacity(depth),
            now_us: 0.0,
            retired_us: 0.0,
            inline_us: 0.0,
            completions: 0,
            peak: 0,
        }
    }

    /// Feeds one decided request through the model.
    pub(crate) fn on_decided(&mut self, op: Op, outcome: &AccessOutcome) {
        self.inline_us += self.lat.request_us(op, outcome);
        let (decision, backend) = service_split(&self.lat, op, outcome);
        if backend == 0.0 {
            // Hits retire synchronously on the decision timeline.
            self.now_us += decision;
            return;
        }
        if self.inflight.len() == self.depth {
            // Queue full: retire the oldest completion in seq order and
            // stall the decision clock until its slot frees.
            let head = self.inflight.pop_front().expect("depth >= 1");
            self.retired_us = self.retired_us.max(head);
            self.now_us = self.now_us.max(self.retired_us);
        }
        let issue = self.now_us;
        self.now_us += decision;
        let engine_done = if self.lat.overlap_policy_with_ssd {
            // Inference runs concurrently with the SSD access; the
            // backend op issues at the decision's start.
            issue
        } else {
            self.now_us
        };
        self.inflight.push_back(engine_done + backend);
        self.peak = self.peak.max(self.inflight.len());
        self.completions += 1;
    }

    /// Drains the queue (in-order retirement of everything still in
    /// flight) and returns the session telemetry.
    pub(crate) fn finish(self) -> OverlapStats {
        let mut retired = self.retired_us;
        for c in self.inflight {
            retired = retired.max(c);
        }
        let overlapped = self.now_us.max(retired);
        OverlapStats {
            backend_completions: self.completions,
            backend_inflight_peak: self.peak as u64,
            modeled_inline_us: self.inline_us,
            modeled_overlapped_us: overlapped,
            overlap_saved_us: self.inline_us - overlapped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_cache::Eviction;
    use icgmm_trace::PageIndex;

    fn miss(dirty_victim: Option<bool>) -> AccessOutcome {
        AccessOutcome::MissInserted {
            way: 0,
            evicted: dirty_victim.map(|dirty| Eviction {
                page: PageIndex::new(0),
                dirty,
            }),
        }
    }

    /// The split recombines to `request_us` under both overlap settings:
    /// the completion model and the inline model describe one service.
    #[test]
    fn split_recombines_to_request_us() {
        for overlap in [true, false] {
            let lat = LatencyModel {
                overlap_policy_with_ssd: overlap,
                ..LatencyModel::paper_tlc()
            };
            for op in [Op::Read, Op::Write] {
                for outcome in [
                    AccessOutcome::Hit { way: 1 },
                    miss(None),
                    miss(Some(false)),
                    miss(Some(true)),
                    AccessOutcome::MissBypassed,
                ] {
                    let (decision, backend) = service_split(&lat, op, &outcome);
                    let recombined = match &outcome {
                        AccessOutcome::Hit { .. } => decision,
                        _ if overlap => backend.max(decision),
                        _ => backend + decision,
                    };
                    assert_eq!(
                        recombined,
                        lat.request_us(op, &outcome),
                        "{op:?} {outcome:?}"
                    );
                }
            }
        }
    }

    /// Depth 1 degenerates to the inline model on miss streams, under
    /// both overlap settings: a new backend access waits out the
    /// previous one, so consecutive misses never overlap.
    #[test]
    fn depth_one_is_the_inline_model_on_misses() {
        for overlap in [true, false] {
            let lat = LatencyModel {
                overlap_policy_with_ssd: overlap,
                ..LatencyModel::paper_tlc()
            };
            let mut q = CompletionQueue::new(1, lat);
            for i in 0..100u64 {
                let outcome = match i % 3 {
                    0 => miss(None),
                    1 => miss(Some(i % 6 == 1)),
                    _ => AccessOutcome::MissBypassed,
                };
                q.on_decided(if i % 2 == 0 { Op::Read } else { Op::Write }, &outcome);
            }
            let stats = q.finish();
            assert_eq!(stats.modeled_inline_us, stats.modeled_overlapped_us);
            assert_eq!(stats.overlap_saved_us, 0.0);
            assert_eq!(stats.backend_inflight_peak, 1);
        }
    }

    /// On a mixed stream even depth 1 legitimately hides hit decisions
    /// under the single in-flight backend op: savings are exactly the
    /// hit time decided while a miss was in flight, bounded by the total
    /// hit time and never negative.
    #[test]
    fn depth_one_mixed_stream_hides_only_hit_time() {
        let lat = LatencyModel::paper_tlc();
        let mut q = CompletionQueue::new(1, lat);
        let mut hits = 0u64;
        for i in 0..99u64 {
            if i % 3 == 0 {
                q.on_decided(Op::Read, &miss(None));
            } else {
                hits += 1;
                q.on_decided(Op::Read, &AccessOutcome::Hit { way: 0 });
            }
        }
        let stats = q.finish();
        assert!(stats.overlap_saved_us >= 0.0);
        assert!(stats.overlap_saved_us <= hits as f64 * lat.hit_us);
        // Two hits (2 µs) fit entirely under each 75 µs in-flight read.
        assert_eq!(stats.overlap_saved_us, hits as f64 * lat.hit_us);
    }

    /// A deep queue on an all-miss stream overlaps almost the whole
    /// backend cost: decisions issue every `policy_engine_us` while the
    /// queue holds `depth` reads in flight.
    #[test]
    fn deep_queue_overlaps_the_miss_stream() {
        let lat = LatencyModel::paper_tlc();
        let n = 1000u64;
        let mut q = CompletionQueue::new(8, lat);
        for _ in 0..n {
            q.on_decided(Op::Read, &miss(None));
        }
        let stats = q.finish();
        assert_eq!(stats.backend_completions, n);
        assert_eq!(stats.backend_inflight_peak, 8);
        assert_eq!(stats.modeled_inline_us, n as f64 * lat.ssd_read_us);
        // Steady-state issue rate = one retirement per read / depth.
        assert!(stats.overlap_saved_us > 0.8 * stats.modeled_inline_us);
        assert!(stats.overlap_saved_us <= stats.modeled_inline_us);
    }

    /// Hits never enter the completion queue and never create savings.
    #[test]
    fn hit_only_stream_has_no_backend_traffic() {
        let mut q = CompletionQueue::new(16, LatencyModel::paper_tlc());
        for _ in 0..50 {
            q.on_decided(Op::Read, &AccessOutcome::Hit { way: 2 });
        }
        let stats = q.finish();
        assert_eq!(stats.backend_completions, 0);
        assert_eq!(stats.backend_inflight_peak, 0);
        assert_eq!(stats.overlap_saved_us, 0.0);
        assert_eq!(stats.modeled_inline_us, 50.0);
    }

    /// The overlapped makespan is never below the critical path (the
    /// serial decision stream) nor above the inline total; completions
    /// retire in sequence order even when a long write-back overtakes a
    /// short read on completion time.
    #[test]
    fn makespan_brackets_and_in_order_retirement() {
        let lat = LatencyModel::paper_tlc();
        let mut q = CompletionQueue::new(4, lat);
        // Dirty write-back (975 µs service) followed by short reads: the
        // reads *complete* before the write-back but must retire after it.
        q.on_decided(Op::Read, &miss(Some(true)));
        for _ in 0..3 {
            q.on_decided(Op::Read, &miss(None));
        }
        let stats = q.finish();
        // In-order retirement: the frontier is the write-back's completion
        // (3 µs of decisions never beat 975 µs of backend).
        assert_eq!(
            stats.modeled_overlapped_us,
            lat.ssd_write_us + lat.ssd_read_us
        );
        assert!(stats.overlap_saved_us >= 0.0);
        assert!(stats.modeled_overlapped_us <= stats.modeled_inline_us);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = OverlapStats {
            backend_completions: 3,
            backend_inflight_peak: 2,
            modeled_inline_us: 100.0,
            modeled_overlapped_us: 60.0,
            overlap_saved_us: 40.0,
        };
        let b = OverlapStats {
            backend_completions: 5,
            backend_inflight_peak: 7,
            modeled_inline_us: 10.0,
            modeled_overlapped_us: 10.0,
            overlap_saved_us: 0.0,
        };
        a.merge(&b);
        assert_eq!(a.backend_completions, 8);
        assert_eq!(a.backend_inflight_peak, 7);
        assert_eq!(a.modeled_inline_us, 110.0);
        assert_eq!(a.modeled_overlapped_us, 70.0);
        assert_eq!(a.overlap_saved_us, 40.0);
    }
}
