//! # icgmm-serve
//!
//! Concurrent cache *service* over the ICGMM reproduction's sharded
//! replay engine: N client threads submit trace requests into bounded
//! per-shard ingestion queues, shard workers decide hit/miss/admit/evict
//! at speculation speed, and a sequence-number merge re-accounts the
//! outcome stream in global trace order — incrementally, in O(shards)
//! memory.
//!
//! The service inherits the offline engine's headline property: the
//! merged [`ServeReport::sim`] is **bit-identical** to
//! [`icgmm_cache::ShardedSimulator::run`] (and hence to the
//! single-threaded replay) over the same inputs, for every shard count,
//! client count, queue depth and ingestion interleaving. Concurrency
//! buys throughput and costs latency; it never changes a decision.
//!
//! On top of that the service adds what an offline replay cannot
//! measure: explicit backpressure (bounded queues; blocking or
//! shed-counting submission, [`SubmitMode`]), graceful shutdown
//! ([`ServeConfig::stop_after`] — drain and join, report equal to the
//! truncated offline replay), transparent worker-death recovery (the
//! supervisor re-replays a dead shard's subtrace offline), and a timing
//! surface: requests/sec at saturation plus log-bucketed p50/p99
//! admission-decision latencies ([`ServeReport`]).
//!
//! ## Example
//!
//! ```
//! use icgmm_cache::{
//!     AlwaysAdmit, CacheConfig, LatencyModel, LruPolicy, ShardPolicies,
//! };
//! use icgmm_serve::{CacheServer, ServeConfig};
//! use icgmm_trace::TraceRecord;
//!
//! let trace: Vec<TraceRecord> = (0..4096u64).map(|i| TraceRecord::read((i % 64) << 12)).collect();
//! let cfg = CacheConfig { capacity_bytes: 32 * 4096, block_bytes: 4096, ways: 4 };
//! let server = CacheServer::new(ServeConfig {
//!     shards: 4,
//!     clients: 2,
//!     queue_depth: 64,
//!     ..ServeConfig::default()
//! })?;
//! let report = server.serve(
//!     &[],
//!     &trace,
//!     cfg,
//!     &mut |_ctx| ShardPolicies {
//!         admission: Box::new(AlwaysAdmit),
//!         eviction: Box::new(LruPolicy::new(cfg.num_sets(), cfg.ways)),
//!         score: None,
//!     },
//!     &LatencyModel::paper_tlc(),
//!     None,
//! )?;
//! assert_eq!(report.requests, 4096);
//! assert!(report.requests_per_sec > 0.0);
//! # Ok::<(), icgmm_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod hist;
mod overlap;
mod server;

pub use config::{ServeConfig, ServeError, SubmitMode};
pub use hist::LatencyHistogram;
pub use overlap::OverlapStats;
pub use server::{CacheServer, ServeReport};
