//! The concurrent cache service: clients → bounded per-shard ingestion
//! queues → shard workers deciding at speculation speed → a sequence-
//! number merge re-accounting outcomes in global order, incrementally.
//!
//! # Why the served stream re-accounts bit-identically
//!
//! Three offline invariants compose:
//!
//! 1. **Set partitioning** ([`icgmm_cache::ShardedSimulator`]'s argument): each shard
//!    worker sees exactly the subsequence of requests whose sets it owns,
//!    in trace order, so every per-record outcome equals the
//!    single-threaded replay's outcome at the same global position —
//!    regardless of *when* each request physically arrives.
//! 2. **Chunked continuation** (the batcher's `run_observed_from`
//!    property): replaying a shard's subsequence in arbitrarily ragged
//!    ingestion chunks produces the same outcomes as one uninterrupted
//!    replay, because the sequence clock and shadow policy state carry
//!    across chunk boundaries.
//! 3. **Streaming merge** ([`StreamingMerge`]): pushing outcomes through
//!    the accounting in ascending global order reproduces the
//!    single-threaded report bit-for-bit, and panics on any lost,
//!    duplicated or reordered outcome rather than skewing silently.
//!
//! Concurrency therefore only decides *timing* (throughput, admission
//! latency, shed counts) — never *results*. The equivalence suite pits
//! every served report against [`icgmm_cache::ShardedSimulator::run`] to hold the
//! line.
//!
//! # Deadlock freedom with bounded queues everywhere
//!
//! Each client owns a disjoint set of shards and submits its requests in
//! ascending global order; the merger consumes outcomes in ascending
//! global order. When the merger blocks for global position `t` (owned by
//! shard `X`), every position `< t` is already merged, so `X`'s owning
//! client has already submitted `t` (its earlier submissions all
//! completed) — hence `X`'s worker either holds `t` or is blocked
//! publishing an outcome `< t`… which the merger has already drained.
//! Inductively the merger always makes progress, so bounded ingestion
//! *and* outcome queues cannot cycle.
//!
//! Per-shard transport buffering ([`SUBMIT_BATCH`]) needs one refinement
//! of the argument. A client keeps one open batch per owned shard (so
//! interleaved traffic still fills ≤64-record batches instead of
//! degenerating to run-length-1 sends), which means a record can sit
//! buffered client-side while later records ship. The invariant that
//! matters is narrower than "submitted in ascending order": *whenever a
//! client blocks on a full queue, every record it owns with a global
//! position below the blocked batch's minimum has already been
//! enqueued.* The ordered-flush protocol in [`flush_shard`] restores it
//! on demand: non-blocking sends need no ordering (they cannot
//! deadlock), and before any *blocking* send of a batch with min-seq
//! watermark `m`, every other open batch whose watermark is `< m` is
//! flushed first, in ascending watermark order. Records append to a
//! buffer in ascending order, so a buffer's head seq *is* its watermark,
//! and after the sweep no buffered record precedes `m`. The merger-
//! progress induction then goes through unchanged: if the merger waits
//! on position `t` (shard `X`) while `X`'s client blocks on shard `Y`,
//! the blocked batch's watermark is `> t` (positions `< t` are merged,
//! hence submitted), so the sweep already flushed `t` toward `X`.
//! Workers still flush their buffered outcomes before parking on an
//! empty ingestion queue — no decided outcome is ever held across a park
//! ([`RecState::flush`]).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::thread;
use std::time::Instant;

use crossbeam::channel::{bounded_with_spin, Receiver, Sender, TryRecvError, TrySendError};

/// Rounds of [`thread::yield_now`] a *multi-shard* batched worker spends
/// waiting for its ingestion queue to refill before replaying a partial
/// chunk (see the drain loop in `run_worker`). Above one shard a shard
/// sees only every S-th record on interleaved traffic, so even with
/// per-shard client buffers a speculation window's worth of records
/// spans several batches in flight; yielding hands the clients the
/// scheduler quanta to deliver the rest — measurably fuller chunks. With
/// a single shard the entire trace funnels into one buffer: the queue
/// refills in full batches whenever the client runs at all, an empty
/// queue means the client is parked or done, and burning yields only
/// adds context switches.
const DRY_YIELDS: u32 = 8;

/// Transport batching factor: up to this many records ride one channel
/// message, on both the ingestion and the outcome path. A bounded-queue
/// hand-off costs a lock round-trip (and sometimes a wake) per message;
/// per-record messages would spend several hundred ns/record on pure
/// transport — more than the replay spends deciding. Batching amortises
/// that to noise while `queue_depth` keeps its meaning in records: the
/// per-shard batch size is `min(SUBMIT_BATCH, queue_depth)` and the slot
/// count `queue_depth / batch`, so a queue never holds more records than
/// configured (`queue_depth: 1` degenerates to per-record hand-off,
/// which the backpressure tests rely on).
const SUBMIT_BATCH: usize = 64;

/// Spin budget of the serving transport's channels (a shim extension —
/// see `bounded_with_spin`). Every message carries up to
/// [`SUBMIT_BATCH`] records, so a park/wake round-trip is amortised to
/// noise — while the generous spin default, tuned for the sharded
/// replay engine's per-record hand-off, actively hurts here: on
/// few-core hosts several idle workers yielding in lock-step starve
/// the one runnable client between batches.
const CHANNEL_SPIN: usize = 16;

/// Cap on how many queued records a scored worker drains into one replay
/// chunk. The batcher re-evaluates its dense/sparse scoring mode and its
/// adaptive depth once per *window*, and a window never outgrows the
/// chunk that feeds it — so a worker that greedily drained a whole
/// speculation window (4096 records; on a busy host the dry-yield loop
/// readily accumulates that much) replays hit-interleaved traffic as one
/// giant sparse window, issuing a tiny `score_window` call per ~2-record
/// miss run and paying the per-call overhead thousands of times. Capped
/// chunks keep the mode probe sampling: after one sparse chunk the miss
/// fraction flips dense and every later chunk scores in one batched call.
/// Outcomes are chunking-invariant (the batcher's window-boundary
/// invariance), so this is a pure throughput knob.
const DRAIN_CHUNK: usize = 256;
use icgmm_cache::{
    resolve_shard_routing, shard_contract, shard_gap_before, simulate_streaming_observed_records,
    streaming_step, CacheConfig, FaultStats, GapScore, LatencyModel, RecordsRef, ReplayEvent,
    ReplayObserver, ScoreSource, SeqOutcome, SetAssocCache, ShardCtx, ShardPartition,
    ShardPolicies, SimReport, SpecParams, SpecStats, StreamingMerge, WindowedSimulator,
};
use icgmm_trace::TraceRecord;
use serde::{Deserialize, Serialize};

use crate::config::{ServeConfig, ServeError, SubmitMode};
use crate::hist::LatencyHistogram;
use crate::overlap::{CompletionQueue, OverlapStats};

/// One request in flight from a client to its shard worker.
#[derive(Clone, Copy)]
struct IngestMsg {
    /// Global trace position (warm-up + measured, 0-based).
    seq: u64,
    record: TraceRecord,
    /// Foreign-shard records since this shard's previous record — the
    /// scorer clock fast-forward, exactly as in the offline replay.
    gap: u64,
    /// Transport-entry instant for the admission-latency histogram:
    /// stamped once per flush-run when the batch leaves its client
    /// buffer, *before* any full-queue wait. Client-buffer dwell is a
    /// batching artifact and is excluded; blocking backpressure is real
    /// queueing and is included.
    t_submit: Instant,
}

/// What a shard worker hands back at join time.
struct WorkerDone {
    hist: LatencyHistogram,
    spec: SpecStats,
    fault: FaultStats,
    scored: u64,
    overlap: OverlapStats,
    /// Whether this worker rode the speculative batcher (resolved on the
    /// worker from its own policies, mirroring the offline engine).
    batched: bool,
    /// Policy names for the merged report (policies are built worker-side
    /// now, so the names travel back with the results).
    ev_name: String,
    adm_name: String,
}

/// The serving front-end. Construction validates the configuration;
/// [`CacheServer::serve`] runs one serving session to completion.
#[derive(Clone, Debug)]
pub struct CacheServer {
    cfg: ServeConfig,
}

/// Result of one serving session.
///
/// The semantic half (`sim`, `scores_consumed`) is bit-identical to the
/// offline [`icgmm_cache::ShardedSimulator::run`] of the same (possibly
/// `stop_after`-truncated) inputs; the timing half describes this
/// particular serving run and is intentionally excluded from equality
/// comparisons.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeReport {
    /// The merged simulation report — equal to the offline replay's.
    pub sim: SimReport,
    /// Field-wise sum of per-worker speculation telemetry. Serving
    /// windows cut at ingestion-chunk boundaries, so these counters
    /// describe the serving run itself (offline batched replay cuts at
    /// its own window boundaries); recovered shards contribute zero.
    pub spec: SpecStats,
    /// Whether scored workers rode the speculative miss-window batcher.
    pub batched: bool,
    /// Replay events that consumed a score — engine- and
    /// chunking-invariant, hence equal to the offline replay's count.
    pub scores_consumed: u64,
    /// Requests served (warm-up + measured, after `stop_after`).
    pub requests: u64,
    /// Requests a [`SubmitMode::Shed`] client found a full queue for.
    pub sheds: u64,
    /// Shard workers this run used.
    pub shards: usize,
    /// Client threads this run used (after capping to the shard count).
    pub clients: usize,
    /// Wall-clock time from first submission to last merged outcome, µs.
    pub wall_us: f64,
    /// Sustained throughput at saturation: `requests / wall`.
    pub requests_per_sec: f64,
    /// Median admission-decision latency (submit → the decided outcome's
    /// flush toward the merger) over the measured phase, µs. Queueing
    /// delay included — backpressure is part of the number.
    pub admission_p50_us: f64,
    /// 99th-percentile admission-decision latency, µs (log-bucketed
    /// upper bound: never under-states the tail).
    pub admission_p99_us: f64,
    /// Simulated backend-completion telemetry: modeled SSD accesses
    /// retired through each worker's bounded completion queue and the
    /// modeled time saved by overlapping admission decisions with
    /// in-flight misses (see [`OverlapStats`]). Telemetry only — `sim`
    /// never depends on it.
    pub overlap: OverlapStats,
}

impl CacheServer {
    /// Creates a server over a validated configuration.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for zero shard/client/queue geometry or an
    /// inconsistent fault plan.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.params` is invalid (same contract as
    /// [`WindowedSimulator::with_params`]).
    pub fn new(cfg: ServeConfig) -> Result<Self, ServeError> {
        cfg.validate()?;
        let _ = WindowedSimulator::with_params(cfg.params);
        Ok(CacheServer { cfg })
    }

    /// The configuration this server runs.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Serves `warmup` + `measured` to completion and returns the merged
    /// report. `make_shard` is called once per shard *on that shard's
    /// worker thread* (hence `Fn + Sync`), exactly as in
    /// [`icgmm_cache::ShardedSimulator::run`]; the same shard-determinism
    /// contracts are asserted above one shard.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for invalid cache geometry;
    /// [`ServeError::ShardFailed`] when a worker dies and the
    /// supervisor's offline re-replay of its subtrace dies too.
    ///
    /// # Panics
    ///
    /// Panics when running more than one shard with a non-
    /// shard-deterministic eviction policy or a non-shardable score
    /// source, and on any lost/duplicated outcome (the merge's ordering
    /// assertion — a service bug, not an input error).
    pub fn serve(
        &self,
        warmup: &[TraceRecord],
        measured: &[TraceRecord],
        cache_cfg: CacheConfig,
        make_shard: &(dyn Fn(&ShardCtx<'_>) -> ShardPolicies + Sync),
        latency: &LatencyModel,
        series_window: Option<u64>,
    ) -> Result<ServeReport, ServeError> {
        cache_cfg
            .validate()
            .map_err(|e| ServeError::Config(e.to_string()))?;
        let s = self.cfg.shards;
        let clients = self.cfg.clients.min(s);
        let plan = self.cfg.fault;

        // Graceful shutdown = stop accepting: truncate at the cutoff and
        // serve the prefix to completion. Drain-and-join then happens
        // naturally, and the report equals an offline replay of the
        // truncated trace (the seeded-shutdown property test).
        let total = warmup.len() + measured.len();
        let cut = self
            .cfg
            .stop_after
            .map_or(total, |k| (k as usize).min(total));
        let warmup = &warmup[..warmup.len().min(cut)];
        let measured = &measured[..cut - warmup.len()];
        let n = warmup.len() + measured.len();

        // Zero-copy fan-out — the identical [`ShardPartition`] the
        // offline sharded replay builds: per-shard ascending `u32`
        // position lists (~4 B/record of routing), no per-shard record
        // copies, no stored gap or seq vectors. Clients walk the
        // partition directly (k-way merge over their owned shards'
        // lists), workers replay indexed views over the caller's slices,
        // and the merger recomputes each record's owner on the fly.
        let part = ShardPartition::build(s, &cache_cfg, warmup, measured).map_err(|e| match e {
            icgmm_cache::ShardRunError::TraceTooLong { records } => {
                ServeError::TraceTooLong { records }
            }
            other => ServeError::Config(other.to_string()),
        })?;

        // Per-shard policies are built *inside* each worker (parallel
        // construction, shared verbatim with the offline engine — same
        // `shard_contract` refusals, same `resolve_shard_routing`).
        // Routing is forced to streaming under scorer/monitor faults:
        // those decisions depend on window boundaries, and serving
        // windows cut at ingestion boundaries.
        let routing = self.cfg.routing;
        let force_streaming = plan.scorer_armed() || plan.monitor_armed();

        let panic_at: Vec<Option<u64>> = (0..s)
            .map(|shard| plan.shard_panic_point(shard, part.positions(shard).len()))
            .collect();
        let breaker = plan
            .breaker_armed()
            .then_some((plan.breaker_storm_windows, plan.breaker_cooldown_records));

        // Channels: one bounded ingestion queue and one bounded outcome
        // queue per shard, carrying batches of up to `batch` records per
        // message; `slots × batch ≤ queue_depth` keeps the configured
        // bound counted in records (see [`SUBMIT_BATCH`]). Each
        // sender/receiver half has exactly one owner, so disconnection
        // cleanly signals "peer done/dead".
        let depth = self.cfg.queue_depth;
        let batch = depth.clamp(1, SUBMIT_BATCH);
        let slots = (depth / batch).max(1);
        let mut ingest_rx: Vec<Option<Receiver<Vec<IngestMsg>>>> = Vec::with_capacity(s);
        let mut out_tx: Vec<Option<Sender<Vec<SeqOutcome>>>> = Vec::with_capacity(s);
        let mut out_rx: Vec<Receiver<Vec<SeqOutcome>>> = Vec::with_capacity(s);
        let mut client_senders: Vec<Vec<Option<Sender<Vec<IngestMsg>>>>> = (0..clients)
            .map(|_| (0..s).map(|_| None).collect())
            .collect();
        for shard in 0..s {
            let (itx, irx) = bounded_with_spin::<Vec<IngestMsg>>(slots, CHANNEL_SPIN);
            let (otx, orx) = bounded_with_spin::<Vec<SeqOutcome>>(slots, CHANNEL_SPIN);
            client_senders[shard % clients][shard] = Some(itx);
            ingest_rx.push(Some(irx));
            out_tx.push(Some(otx));
            out_rx.push(orx);
        }

        let params = self.cfg.params;
        let dry_budget = if s > 1 { DRY_YIELDS } else { 0 };
        let lat = *latency;
        let shed = self.cfg.submit == SubmitMode::Shed;
        let warmup_len = warmup.len() as u64;
        let comp_depth = self.cfg.completion_depth;
        // Advisory in-flight record count per ingestion queue (adds by
        // the owning client after a successful send, subs by the worker
        // after a receive): record-granular observed occupancy for shed
        // accounting, which slot-granular channel state cannot provide.
        // i64 because the add and the sub race benignly — the worker can
        // drain a message before its sender's add lands.
        let inflight: Vec<AtomicI64> = (0..s).map(|_| AtomicI64::new(0)).collect();

        let mut fault = FaultStats::default();
        // Outcomes recovered by the supervisor for dead shards, minus the
        // prefix the worker already delivered; and each recovered shard's
        // full scored count (replacing the dead worker's partial one).
        let mut replacement: Vec<VecDeque<SeqOutcome>> = (0..s).map(|_| VecDeque::new()).collect();
        let mut recovered_scored: Vec<Option<u64>> = vec![None; s];
        let mut delivered: Vec<usize> = vec![0; s];
        // Outcome batches received from live workers, not yet merged.
        let mut pending: Vec<VecDeque<SeqOutcome>> = (0..s).map(|_| VecDeque::new()).collect();

        let start = Instant::now();
        let part_ref = &part;
        let served = crossbeam::thread::scope(|scope| {
            let worker_handles: Vec<_> = (0..s)
                .map(|shard| {
                    let rx = ingest_rx[shard].take().expect("one worker per shard");
                    let tx = out_tx[shard].take().expect("one worker per shard");
                    let at = panic_at[shard];
                    let infl = &inflight[shard];
                    scope.spawn(move |_| {
                        // Worker-side policy construction: Belady oracle
                        // builds and scorer clones run in parallel across
                        // shards, off the calling thread.
                        let (warm, meas) = part_ref.views(shard, warmup, measured);
                        let ctx = ShardCtx {
                            shard,
                            shards: s,
                            warmup: warm,
                            measured: meas,
                        };
                        let pol = make_shard(&ctx);
                        if let Err(msg) = shard_contract(s, &pol) {
                            // resume_unwind skips the panic hook: the
                            // refusal is re-asserted plainly on the
                            // calling thread by the supervisor.
                            resume_unwind(Box::new(msg));
                        }
                        let batched = resolve_shard_routing(routing, &pol) && !force_streaming;
                        run_worker(
                            rx, tx, pol, cache_cfg, params, batched, lat, at, breaker, warmup_len,
                            batch, dry_budget, infl, comp_depth,
                        )
                    })
                })
                .collect();
            let infl_all: &[AtomicI64] = &inflight;
            let client_handles: Vec<_> = client_senders
                .into_iter()
                .enumerate()
                .map(|(client, senders)| {
                    scope.spawn(move |_| {
                        run_client(
                            part_ref, client, clients, warmup, measured, senders, shed, batch,
                            infl_all, depth,
                        )
                    })
                })
                .collect();

            // The merger runs here, on the calling thread: pull each
            // global position's outcome from its owning shard and
            // re-account it immediately — O(shards) live outcomes.
            let mut merge = StreamingMerge::new(warmup.len(), &lat, series_window);
            let mut merge_err: Option<ServeError> = None;
            let mut recovered_names: Option<(String, String)> = None;
            'merge: for r in warmup.iter().chain(measured) {
                let shard = cache_cfg.set_of(r.page()) % s;
                let out = loop {
                    if let Some(o) = replacement[shard].pop_front() {
                        break o;
                    }
                    if let Some(o) = pending[shard].pop_front() {
                        break o;
                    }
                    match out_rx[shard].recv() {
                        Ok(outs) => pending[shard].extend(outs),
                        Err(_) => {
                            // The worker died before delivering this
                            // outcome. Graceful degradation, exactly as
                            // offline: re-replay the shard's subtrace on
                            // this thread (panic point disarmed, fresh
                            // policies) and keep serving from the
                            // replayed outcomes past the delivered
                            // prefix.
                            fault.shard_panics += 1;
                            let (warm, meas) = part_ref.views(shard, warmup, measured);
                            let ctx = ShardCtx {
                                shard,
                                shards: s,
                                warmup: warm,
                                measured: meas,
                            };
                            let pol = make_shard(&ctx);
                            // A contract refusal reproduces here as the
                            // deterministic plain panic callers observe.
                            if let Err(msg) = shard_contract(s, &pol) {
                                panic!("{msg}");
                            }
                            recovered_names.get_or_insert_with(|| {
                                (
                                    pol.eviction.name().to_string(),
                                    pol.admission.name().to_string(),
                                )
                            });
                            let replay = catch_unwind(AssertUnwindSafe(|| {
                                replay_shard_offline(
                                    warm,
                                    meas,
                                    part_ref.positions(shard),
                                    cache_cfg,
                                    &lat,
                                    pol,
                                )
                            }));
                            match replay {
                                Ok((outs, scored)) => {
                                    fault.shard_recoveries += 1;
                                    recovered_scored[shard] = Some(scored);
                                    replacement[shard] =
                                        outs.into_iter().skip(delivered[shard]).collect();
                                    break replacement[shard]
                                        .pop_front()
                                        .expect("re-replay covers every undelivered record");
                                }
                                Err(p) => {
                                    merge_err = Some(ServeError::ShardFailed {
                                        shard,
                                        message: format!(
                                            "worker died; supervisor re-replay panicked too ({})",
                                            panic_payload(p)
                                        ),
                                    });
                                    break 'merge;
                                }
                            }
                        }
                    }
                };
                delivered[shard] += 1;
                merge.push(&out);
            }
            let wall = start.elapsed();

            // Unblock any worker still parked on a full outcome queue
            // (only possible on the error path), then join everything —
            // the scope must not exit with unjoined panicked threads.
            drop(out_rx);
            let mut sheds = 0u64;
            for h in client_handles {
                sheds += h.join().expect("clients never panic");
            }
            let mut hist = LatencyHistogram::new();
            let mut spec = SpecStats::default();
            let mut overlap = OverlapStats::default();
            let mut scores_consumed = 0u64;
            let mut batched = false;
            let mut names = recovered_names;
            for (shard, h) in worker_handles.into_iter().enumerate() {
                match h.join() {
                    Ok(done) => {
                        hist.merge(&done.hist);
                        spec.merge(&done.spec);
                        fault.merge(&done.fault);
                        overlap.merge(&done.overlap);
                        scores_consumed += done.scored;
                        batched |= done.batched;
                        names.get_or_insert((done.ev_name, done.adm_name));
                    }
                    Err(payload) => match recovered_scored[shard] {
                        // Recovered: the offline re-replay's scored count
                        // stands in for the dead worker's partial one
                        // (score consumption is engine-invariant).
                        Some(scored) => scores_consumed += scored,
                        None => {
                            if merge_err.is_none() {
                                merge_err = Some(ServeError::ShardFailed {
                                    shard,
                                    message: panic_payload(payload),
                                });
                            }
                        }
                    },
                }
            }
            if let Some(e) = merge_err {
                return Err(e);
            }
            let (ev_name, adm_name) = names
                .expect("every served run joins a live worker or recovers one supervisor-side");
            let sim = merge.finish(measured.len(), &ev_name, &adm_name);
            Ok((
                sim,
                spec,
                scores_consumed,
                sheds,
                hist,
                wall,
                overlap,
                batched,
            ))
        })
        .expect("serve scope joins every handle");
        let (mut sim, spec, scores_consumed, sheds, hist, wall, overlap, batched) = served?;
        sim.fault = fault;

        let wall_us = wall.as_secs_f64() * 1e6;
        let requests_per_sec = if wall_us > 0.0 {
            n as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        Ok(ServeReport {
            sim,
            spec,
            batched,
            scores_consumed,
            requests: n as u64,
            sheds,
            shards: s,
            clients,
            wall_us,
            requests_per_sec,
            admission_p50_us: hist.quantile_us(0.50),
            admission_p99_us: hist.quantile_us(0.99),
            overlap,
        })
    }
}

/// One client thread: submit the owned shards' requests in ascending
/// global order, with one open transport batch *per owned shard* — on
/// interleaved traffic every shard still fills ≤[`SUBMIT_BATCH`]-record
/// batches instead of degenerating to run-length-1 sends.
///
/// The client owns no routed copy of the trace: it walks its owned
/// shards' [`ShardPartition`] index lists directly (a k-way merge over
/// ascending position lists reproduces ascending global order), reads
/// each record out of the caller's original slices, and derives the
/// per-record scorer-clock gap from consecutive index entries
/// ([`shard_gap_before`] — exact, because the client owns *every* record
/// of its shards). Deadlock freedom rests on the ordered-flush protocol
/// in [`flush_shard`] (see the module docs); the tail drains the
/// remaining open batches in ascending watermark order for the same
/// reason. Returns the shed count. Sends to a dead shard error out and
/// are ignored — the supervisor's re-replay covers those records.
#[allow(clippy::too_many_arguments)]
fn run_client(
    part: &ShardPartition,
    client: usize,
    clients: usize,
    warmup: &[TraceRecord],
    measured: &[TraceRecord],
    senders: Vec<Option<Sender<Vec<IngestMsg>>>>,
    shed: bool,
    batch: usize,
    inflight: &[AtomicI64],
    depth: usize,
) -> u64 {
    let s = part.shards();
    let owned: Vec<usize> = (client..s).step_by(clients.max(1)).collect();
    let mut cursors = vec![0usize; owned.len()];
    let mut sheds = 0u64;
    // One open batch per shard (unowned shards simply stay empty).
    // Records append in ascending global order, so a buffer's head seq is
    // its min-seq watermark.
    let mut bufs: Vec<Vec<IngestMsg>> = (0..senders.len()).map(|_| Vec::new()).collect();
    // Placeholder stamp, overwritten for the whole batch at flush time.
    let epoch = Instant::now();
    loop {
        // Pick the owned shard whose next index entry is the smallest
        // global position — the k-way merge step (k = owned shards,
        // typically shards / clients).
        let mut next: Option<(usize, u32)> = None;
        for (slot, &shard) in owned.iter().enumerate() {
            if let Some(&pos) = part.positions(shard).get(cursors[slot]) {
                if next.is_none_or(|(_, best)| pos < best) {
                    next = Some((slot, pos));
                }
            }
        }
        let Some((slot, pos)) = next else { break };
        let shard = owned[slot];
        let j = cursors[slot];
        cursors[slot] += 1;
        let p = pos as usize;
        let record = if p < warmup.len() {
            warmup[p]
        } else {
            measured[p - warmup.len()]
        };
        bufs[shard].push(IngestMsg {
            seq: pos as u64,
            record,
            gap: shard_gap_before(part.positions(shard), j),
            t_submit: epoch,
        });
        if bufs[shard].len() >= batch {
            flush_shard(
                shard, &mut bufs, &senders, shed, &mut sheds, batch, inflight, depth,
            );
        }
    }
    // Tail flush: lowest-watermark buffer first, so any blocking send
    // satisfies the ordering invariant exactly like the steady state.
    loop {
        let next = bufs
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .min_by_key(|(_, b)| b[0].seq)
            .map(|(shard, _)| shard);
        match next {
            Some(shard) => flush_shard(
                shard, &mut bufs, &senders, shed, &mut sheds, batch, inflight, depth,
            ),
            None => break,
        }
    }
    sheds
}

/// Flushes shard `shard`'s open batch. The try-send fast path needs no
/// ordering (a non-blocking hand-off cannot deadlock). When the queue is
/// full — the one case a blocking send follows — the ordering invariant
/// is restored first: every other open batch whose min-seq watermark
/// precedes this batch's is shipped, in ascending watermark order, so no
/// buffered record precedes the batch the client then blocks on.
#[allow(clippy::too_many_arguments)]
fn flush_shard(
    shard: usize,
    bufs: &mut [Vec<IngestMsg>],
    senders: &[Option<Sender<Vec<IngestMsg>>>],
    shed: bool,
    sheds: &mut u64,
    batch: usize,
    inflight: &[AtomicI64],
    depth: usize,
) {
    if bufs[shard].is_empty() {
        return;
    }
    let mut msgs = std::mem::replace(&mut bufs[shard], Vec::with_capacity(batch));
    let tx = senders[shard].as_ref().expect("client owns this shard");
    stamp_flush_run(&mut msgs);
    let n = msgs.len();
    match tx.try_send(msgs) {
        Ok(()) => {
            inflight[shard].fetch_add(n as i64, Ordering::Relaxed);
        }
        Err(TrySendError::Disconnected(_)) => {}
        Err(TrySendError::Full(m)) => {
            if shed {
                *sheds += records_shed(n, free_records(&inflight[shard], depth));
            }
            // About to block: ordered flush of every earlier open batch.
            let head = m[0].seq;
            let mut earlier: Vec<usize> = (0..bufs.len())
                .filter(|&t| t != shard && !bufs[t].is_empty() && bufs[t][0].seq < head)
                .collect();
            earlier.sort_unstable_by_key(|&t| bufs[t][0].seq);
            for t in earlier {
                let em = std::mem::replace(&mut bufs[t], Vec::with_capacity(batch));
                ship(
                    senders[t].as_ref().expect("client owns this shard"),
                    em,
                    shed,
                    sheds,
                    &inflight[t],
                    depth,
                );
            }
            if tx.send(m).is_ok() {
                inflight[shard].fetch_add(n as i64, Ordering::Relaxed);
            }
        }
    }
}

/// Ships one already-taken batch: stamp, try-send, and on a full queue
/// count the observed shed and fall back to a blocking send. Only called
/// from the ordered-flush sweep, in ascending watermark order — which is
/// exactly what makes its blocking send deadlock-safe.
fn ship(
    tx: &Sender<Vec<IngestMsg>>,
    mut msgs: Vec<IngestMsg>,
    shed: bool,
    sheds: &mut u64,
    inflight: &AtomicI64,
    depth: usize,
) {
    stamp_flush_run(&mut msgs);
    let n = msgs.len();
    match tx.try_send(msgs) {
        Ok(()) => {
            inflight.fetch_add(n as i64, Ordering::Relaxed);
        }
        Err(TrySendError::Disconnected(_)) => {}
        Err(TrySendError::Full(m)) => {
            if shed {
                *sheds += records_shed(n, free_records(inflight, depth));
            }
            if tx.send(m).is_ok() {
                inflight.fetch_add(n as i64, Ordering::Relaxed);
            }
        }
    }
}

/// One clock read per flush-run, shared by every record of the batch:
/// admission latency runs transport entry → outcome flush, so buffering
/// dwell inside the client is excluded by construction rather than
/// inflating the percentiles as buffers live longer.
fn stamp_flush_run(msgs: &mut [IngestMsg]) {
    let now = Instant::now();
    for m in msgs {
        m.t_submit = now;
    }
}

/// Records of an `len`-record batch a lossy service would actually have
/// dropped at `free` observed free record slots: the overflow only, not
/// the whole batch.
fn records_shed(len: usize, free: usize) -> u64 {
    len.saturating_sub(free) as u64
}

/// Observed free record capacity of a queue: configured depth minus the
/// advisory in-flight count (clamped — the worker's subtract can land
/// before the sender's add, leaving the counter transiently negative).
fn free_records(inflight: &AtomicI64, depth: usize) -> usize {
    let load = inflight.load(Ordering::Relaxed).max(0) as usize;
    depth.saturating_sub(load)
}

/// Shared per-record bookkeeping of a shard worker: the shard-local
/// sequence clock, the armed panic point, the latency histogram and the
/// outcome publisher.
struct RecState {
    seen: u64,
    scored: u64,
    panic_at: Option<u64>,
    hist: LatencyHistogram,
    tx: Sender<Vec<SeqOutcome>>,
    /// Decided outcomes not yet shipped to the merger (at most `obatch`).
    obuf: Vec<SeqOutcome>,
    /// Submission stamps of buffered *measured* outcomes, turned into
    /// histogram entries at flush time with a single clock read — a
    /// record's admission latency runs submit → outcome flush, so sharing
    /// the flush instant only rounds the tail *up*, never under-states it
    /// (consistent with the histogram's upper-bound bucket semantics).
    lat_pending: Vec<Instant>,
    obatch: usize,
    warmup_len: u64,
    /// Simulated backend-completion queue over the measured phase — the
    /// modeled-time analogue of the replay's `overlap_saved_us`.
    comp: CompletionQueue,
}

impl RecState {
    /// Publishes one decided record: panic-point check first (mirroring
    /// the offline `OutcomeRecorder` — the scorer has observed the record
    /// but no outcome escapes), then histogram + outcome buffering. An
    /// armed panic drops the buffer with the worker — exactly the "died
    /// before delivering" prefix the supervisor's re-replay covers.
    fn publish(&mut self, msg: &IngestMsg, outcome: icgmm_cache::AccessOutcome, scored: bool) {
        if self.panic_at == Some(self.seen) {
            // resume_unwind skips the panic hook: an armed panic is an
            // expected, supervisor-recovered event, not stderr noise.
            resume_unwind(Box::new(format!(
                "fault-plan armed panic at shard-local record {}",
                self.seen
            )));
        }
        self.seen += 1;
        self.scored += u64::from(scored);
        if msg.seq >= self.warmup_len {
            self.lat_pending.push(msg.t_submit);
            // Same measured-phase gate as the accounting: the completion
            // model covers exactly the records `SimReport::total_us`
            // charges.
            self.comp.on_decided(msg.record.op, &outcome);
        }
        self.obuf.push(SeqOutcome {
            seq: msg.seq,
            record: msg.record,
            outcome,
        });
        if self.obuf.len() >= self.obatch {
            self.flush();
        }
    }

    /// Ships the buffered outcomes as one batch. Called when the buffer
    /// fills and — crucially for deadlock freedom — before the worker
    /// blocks on an empty ingestion queue: a decided outcome held across
    /// a park could starve the merger (which drains shards in global
    /// order) while the owning client is blocked on a different full
    /// queue. A send to a gone merger is ignored; the worker finishes
    /// draining and exits.
    fn flush(&mut self) {
        if self.obuf.is_empty() {
            return;
        }
        if !self.lat_pending.is_empty() {
            let now = Instant::now();
            for t in self.lat_pending.drain(..) {
                self.hist
                    .record_ns(now.saturating_duration_since(t).as_nanos() as u64);
            }
        }
        let outs = std::mem::replace(&mut self.obuf, Vec::with_capacity(self.obatch));
        let _ = self.tx.send(outs);
    }
}

/// Observer adapter for the batched worker path: forwards each replayed
/// event of the current ingestion chunk through [`RecState::publish`].
struct ChunkRecorder<'a> {
    state: &'a mut RecState,
    msgs: &'a [IngestMsg],
    idx: usize,
}

impl ReplayObserver for ChunkRecorder<'_> {
    fn on_record(&mut self, ev: &ReplayEvent<'_>) {
        debug_assert_eq!(ev.seq, self.state.seen, "batched worker lost its seq clock");
        let msg = self.msgs[self.idx];
        self.idx += 1;
        self.state.publish(&msg, *ev.outcome, ev.score.is_some());
    }
}

/// One shard worker: drain the ingestion queue, decide, publish.
///
/// Streaming workers run the canonical [`streaming_step`] per request;
/// batched workers drain up to a window of queued requests and push the
/// chunk through the speculative batcher's continuation entry point
/// ([`WindowedSimulator::run_observed_from`]), whose chunked replay is
/// property-proven bit-identical to one uninterrupted run. Either way the
/// shard-local sequence clock (`seen`) runs continuously, so policy
/// recency stamps and Belady positions match the offline replay exactly.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    rx: Receiver<Vec<IngestMsg>>,
    tx: Sender<Vec<SeqOutcome>>,
    mut pol: ShardPolicies,
    cache_cfg: CacheConfig,
    params: SpecParams,
    batched: bool,
    latency: LatencyModel,
    panic_at: Option<u64>,
    breaker: Option<(u32, u32)>,
    warmup_len: u64,
    batch: usize,
    dry_budget: u32,
    inflight: &AtomicI64,
    comp_depth: usize,
) -> WorkerDone {
    let mut cache = SetAssocCache::new(cache_cfg).expect("geometry validated by serve()");
    let ev_name = pol.eviction.name().to_string();
    let adm_name = pol.admission.name().to_string();
    let mut state = RecState {
        seen: 0,
        scored: 0,
        panic_at,
        hist: LatencyHistogram::new(),
        tx,
        obuf: Vec::with_capacity(batch),
        lat_pending: Vec::with_capacity(batch),
        obatch: batch,
        warmup_len,
        comp: CompletionQueue::new(comp_depth, latency),
    };
    let mut spec = SpecStats::default();
    let mut fault = FaultStats::default();

    let batched_score = if batched { pol.score.take() } else { None };
    if let Some(mut score) = batched_score {
        let mut wsim = WindowedSimulator::with_params(params);
        if let Some((storm, cooldown)) = breaker {
            wsim.set_breaker(storm, cooldown);
        }
        let chunk_cap = params.window.min(DRAIN_CHUNK);
        let mut msgs: Vec<IngestMsg> = Vec::with_capacity(chunk_cap);
        let mut records: Vec<TraceRecord> = Vec::with_capacity(chunk_cap);
        let mut chunk_gaps: Vec<u64> = Vec::with_capacity(chunk_cap);
        loop {
            msgs.clear();
            // Flush decided outcomes before a potential park (see
            // RecState::flush); a no-op when the buffer is empty.
            state.flush();
            match rx.recv() {
                Ok(m) => {
                    inflight.fetch_sub(m.len() as i64, Ordering::Relaxed);
                    msgs.extend(m);
                }
                Err(_) => break,
            }
            // Drain up to a full speculation window. When the queue runs
            // dry mid-drain, yield a few times before settling for a
            // partial chunk: on few-core hosts each yield hands the
            // clients a scheduler quantum to refill the queue, and fuller
            // chunks keep the batcher's dense-scoring segments from
            // fragmenting (outcomes are chunking-invariant — this trades
            // microseconds of admission latency for batching throughput).
            let mut dry_yields = 0u32;
            while msgs.len() < chunk_cap {
                match rx.try_recv() {
                    Ok(m) => {
                        inflight.fetch_sub(m.len() as i64, Ordering::Relaxed);
                        msgs.extend(m);
                    }
                    Err(TryRecvError::Empty) if dry_yields < dry_budget => {
                        dry_yields += 1;
                        thread::yield_now();
                    }
                    Err(_) => break,
                }
            }
            records.clear();
            records.extend(msgs.iter().map(|m| m.record));
            chunk_gaps.clear();
            chunk_gaps.extend(msgs.iter().map(|m| m.gap));
            let seq_base = state.seen;
            let mut rec = ChunkRecorder {
                state: &mut state,
                msgs: &msgs,
                idx: 0,
            };
            let mut gap_score = GapScore::new(score.as_mut(), &chunk_gaps);
            let _ = wsim.run_observed_from(
                seq_base,
                &records,
                &mut cache,
                pol.admission.as_mut(),
                pol.eviction.as_mut(),
                Some(&mut gap_score),
                &latency,
                &mut rec,
            );
            // The batcher's telemetry resets per call; accumulate.
            spec.merge(wsim.spec_stats());
            fault.merge(wsim.fault_stats());
        }
    } else {
        let mut score = pol.score;
        loop {
            state.flush();
            let msgs = match rx.recv() {
                Ok(m) => {
                    inflight.fetch_sub(m.len() as i64, Ordering::Relaxed);
                    m
                }
                Err(_) => break,
            };
            for msg in msgs {
                if msg.gap > 0 {
                    if let Some(sc) = score.as_deref_mut() {
                        sc.observe_gap(msg.gap);
                    }
                }
                let mut sref = score.as_deref_mut().map(|sc| sc as &mut dyn ScoreSource);
                let (outcome, score_val) = streaming_step(
                    &msg.record,
                    state.seen,
                    &mut cache,
                    pol.admission.as_mut(),
                    pol.eviction.as_mut(),
                    &mut sref,
                );
                state.publish(&msg, outcome, score_val.is_some());
            }
        }
    }
    state.flush();
    WorkerDone {
        hist: state.hist,
        spec,
        fault,
        scored: state.scored,
        overlap: state.comp.finish(),
        batched,
        ev_name,
        adm_name,
    }
}

/// Supervisor fallback for a dead shard: deterministically re-replay its
/// subtrace on the calling thread (streaming engine, panic disarmed) and
/// return every outcome stamped with its global position, plus the full
/// scored count. Score consumption is engine-invariant, so the streaming
/// replay stands in for a batched worker exactly. Runs over the same
/// zero-copy indexed views the worker used: each outcome's global
/// position is its index entry, and the scorer clock's gaps derive from
/// consecutive entries.
fn replay_shard_offline(
    warm: RecordsRef<'_>,
    meas: RecordsRef<'_>,
    index: &[u32],
    cache_cfg: CacheConfig,
    latency: &LatencyModel,
    mut pol: ShardPolicies,
) -> (Vec<SeqOutcome>, u64) {
    struct Collect<'a> {
        index: &'a [u32],
        outs: Vec<SeqOutcome>,
        scored: u64,
    }
    impl ReplayObserver for Collect<'_> {
        fn on_record(&mut self, ev: &ReplayEvent<'_>) {
            self.outs.push(SeqOutcome {
                seq: self.index[self.outs.len()] as u64,
                record: *ev.record,
                outcome: *ev.outcome,
            });
            self.scored += u64::from(ev.score.is_some());
        }
    }
    let mut cache = SetAssocCache::new(cache_cfg).expect("geometry validated by serve()");
    let mut collect = Collect {
        index,
        outs: Vec::with_capacity(index.len()),
        scored: 0,
    };
    match pol.score.as_mut() {
        Some(score) => {
            let mut gap_score = GapScore::from_index(score.as_mut(), index);
            simulate_streaming_observed_records(
                warm,
                meas,
                &mut cache,
                pol.admission.as_mut(),
                pol.eviction.as_mut(),
                Some(&mut gap_score),
                latency,
                None,
                &mut collect,
            );
        }
        None => {
            simulate_streaming_observed_records(
                warm,
                meas,
                &mut cache,
                pol.admission.as_mut(),
                pol.eviction.as_mut(),
                None,
                latency,
                None,
                &mut collect,
            );
        }
    }
    (collect.outs, collect.scored)
}

/// Human-readable panic payload (mirrors the offline engine's handling).
fn panic_payload(p: Box<dyn std::any::Any + Send>) -> String {
    match p.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    /// A full queue sheds only the overflow at the observed free record
    /// capacity — never the whole batch (the PR 7 over-count).
    #[test]
    fn sheds_count_the_overflow_not_the_batch() {
        assert_eq!(records_shed(64, 0), 64);
        assert_eq!(records_shed(64, 10), 54);
        assert_eq!(records_shed(5, 5), 0);
        assert_eq!(records_shed(3, 100), 0);
        assert_eq!(records_shed(0, 0), 0);
    }

    #[test]
    fn free_capacity_clamps_transient_negatives() {
        let infl = AtomicI64::new(-3);
        assert_eq!(free_records(&infl, 8), 8);
        infl.store(5, Ordering::Relaxed);
        assert_eq!(free_records(&infl, 8), 3);
        infl.store(20, Ordering::Relaxed);
        assert_eq!(free_records(&infl, 8), 0);
    }

    /// End-to-end over a real bounded channel: with `free` observed
    /// records of headroom, a `len`-record batch sheds `len - free`.
    #[test]
    fn ship_sheds_only_records_beyond_observed_capacity() {
        let depth = 64usize;
        let (tx, rx) = bounded::<Vec<IngestMsg>>(1);
        let infl = AtomicI64::new(0);
        let rec = TraceRecord::read(0);
        let mk = |n: usize| {
            (0..n)
                .map(|i| IngestMsg {
                    seq: i as u64,
                    record: rec,
                    gap: 0,
                    t_submit: Instant::now(),
                })
                .collect::<Vec<_>>()
        };
        // Occupy the single slot with 40 records: 24 records of headroom
        // remain at the configured 64-record depth.
        let mut sheds = 0u64;
        ship(&tx, mk(40), true, &mut sheds, &infl, depth);
        assert_eq!(sheds, 0);
        assert_eq!(infl.load(Ordering::Relaxed), 40);
        // The next 64-record batch finds the queue full. The Full arm of
        // `ship`/`flush_shard` charges records_shed(len, observed free):
        // 64 - 24 = 40 would-be drops — not all 64 (the old over-count).
        match tx.try_send(mk(64)) {
            Err(TrySendError::Full(m)) => {
                sheds += records_shed(m.len(), free_records(&infl, depth));
            }
            _ => panic!("single-slot queue must be full"),
        }
        assert_eq!(sheds, 40);
        assert_eq!(rx.recv().map(|m| m.len()), Ok(40));
    }
}
