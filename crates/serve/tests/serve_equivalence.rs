//! Differential property suite for the serving front-end: a served trace
//! re-accounts **bit-identically** to the offline sharded replay (and
//! hence to the single-threaded simulator) for every shard count in
//! {1, 2, 4, 8} × client count × queue depth × submit mode — plus the
//! seeded-shutdown and backpressure properties, and transparent recovery
//! from armed worker panics.

use icgmm_cache::{
    FaultPlan, FnScore, LatencyModel, ShardPolicies, ShardRouting, ShardedSimulator, SimReport,
    SpecParams,
};
use icgmm_serve::{CacheServer, ServeConfig, ServeError, ServeReport, SubmitMode};
use icgmm_testutil::{admission_for, eviction_for, score_for, small_cfg, zipf_trace};
use icgmm_trace::TraceRecord;
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Serves the trace through a [`CacheServer`] over the grid fixtures.
fn serve(
    cfg: ServeConfig,
    eviction: &str,
    admission: &str,
    score: &str,
    trace: &[TraceRecord],
    warmup_len: usize,
) -> Result<ServeReport, ServeError> {
    let cache_cfg = small_cfg();
    let lat = LatencyModel::paper_tlc();
    let (warm, meas) = trace.split_at(warmup_len);
    CacheServer::new(cfg)?.serve(
        warm,
        meas,
        cache_cfg,
        &|ctx| {
            // Belady's oracle must see this shard's subsequence.
            let recs: Vec<TraceRecord> = ctx
                .warmup
                .iter()
                .chain(ctx.measured.iter())
                .copied()
                .collect();
            ShardPolicies {
                admission: admission_for(admission),
                eviction: eviction_for(eviction, cache_cfg, &recs),
                score: score_for(score),
            }
        },
        &lat,
        Some(64),
    )
}

/// The offline reference: [`ShardedSimulator`] over the same inputs,
/// routing and speculation parameters.
#[allow(clippy::too_many_arguments)]
fn offline(
    shards: usize,
    routing: ShardRouting,
    window: usize,
    eviction: &str,
    admission: &str,
    score: &str,
    trace: &[TraceRecord],
    warmup_len: usize,
) -> (SimReport, u64) {
    let cache_cfg = small_cfg();
    let lat = LatencyModel::paper_tlc();
    let (warm, meas) = trace.split_at(warmup_len);
    let rep = ShardedSimulator::with_params(shards, SpecParams::with_window(window))
        .with_routing(routing)
        .run(
            warm,
            meas,
            cache_cfg,
            &|ctx| {
                let recs: Vec<TraceRecord> = ctx
                    .warmup
                    .iter()
                    .chain(ctx.measured.iter())
                    .copied()
                    .collect();
                ShardPolicies {
                    admission: admission_for(admission),
                    eviction: eviction_for(eviction, cache_cfg, &recs),
                    score: score_for(score),
                }
            },
            &lat,
            Some(64),
        )
        .expect("valid geometry");
    (rep.sim, rep.scores_consumed)
}

proptest! {
    /// Served report == offline sharded replay, bit for bit, across
    /// {score-free LRU, Belady oracle, scored GMM-threshold} × every
    /// shard count × varying client counts, queue depths and submit
    /// modes over random Zipf traces.
    #[test]
    fn served_stream_matches_offline_replay(
        params in (0u64..1_000_000, 300usize..1000, 24u64..160, 60u64..140, 0u8..45, 1usize..700)
    ) {
        let (seed, n, pages, skew_pct, write_pct, window) = params;
        let trace = zipf_trace(seed, n, pages, skew_pct as f64 / 100.0, write_pct);
        let warmup_len = (seed as usize) % (n / 2);
        let grid = [
            ("lru", "always", "none"),
            ("belady", "always", "none"),
            ("gmm-score", "threshold", "fn"),
        ];
        for (i, (eviction, admission, score)) in grid.into_iter().enumerate() {
            for shards in SHARD_COUNTS {
                let (reference, ref_scores) = offline(
                    shards, ShardRouting::Auto, window,
                    eviction, admission, score, &trace, warmup_len,
                );
                // Vary the serving-only knobs with the case seed: they
                // must never show up in the merged report.
                let clients = 1 + (seed as usize + shards + i) % 3;
                let queue_depth = [1, 2, 7, 64][(seed as usize + shards) % 4];
                let completion_depth = [1, 2, 8, 32][(seed as usize + shards + i) % 4];
                let submit = if (seed + shards as u64).is_multiple_of(2) {
                    SubmitMode::Block
                } else {
                    SubmitMode::Shed
                };
                let rep = serve(
                    ServeConfig {
                        shards,
                        clients,
                        queue_depth,
                        submit,
                        completion_depth,
                        params: SpecParams::with_window(window),
                        ..ServeConfig::default()
                    },
                    eviction, admission, score, &trace, warmup_len,
                ).expect("serving succeeds");
                prop_assert_eq!(
                    &rep.sim, &reference,
                    "serving changed the report: {} shards, {} clients, depth {}, {:?}",
                    shards, clients, queue_depth, submit
                );
                prop_assert_eq!(rep.scores_consumed, ref_scores);
                prop_assert_eq!(rep.requests as usize, n);
                if submit == SubmitMode::Block {
                    prop_assert_eq!(rep.sheds, 0);
                }
                // Overlap telemetry invariants: one completion per
                // measured miss, in-flight bounded by the configured
                // depth, and the overlapped makespan never exceeds the
                // inline total (savings are never negative).
                prop_assert_eq!(rep.overlap.backend_completions, rep.sim.stats.misses());
                prop_assert!(rep.overlap.backend_inflight_peak <= completion_depth as u64);
                prop_assert!(rep.overlap.overlap_saved_us >= 0.0);
                prop_assert!(
                    rep.overlap.modeled_overlapped_us <= rep.overlap.modeled_inline_us
                );
                if completion_depth > 1 && rep.sim.stats.misses() > 1 {
                    prop_assert!(
                        rep.overlap.overlap_saved_us > 0.0,
                        "consecutive misses under a deep completion queue must overlap"
                    );
                }
            }
        }
    }

    /// Seeded graceful shutdown: stopping intake after K requests (K at
    /// random points, including 0, mid-warm-up and past the end) serves
    /// exactly the first K records — the report re-accounts
    /// bit-identically to the offline replay of the truncated trace, with
    /// no lost or duplicated outcome (the merge asserts contiguity).
    #[test]
    fn seeded_shutdown_prefixes_match_truncated_replay(
        params in (0u64..1_000_000, 200usize..700, 24u64..96, 1usize..400)
    ) {
        let (seed, n, pages, window) = params;
        let trace = zipf_trace(seed, n, pages, 0.3, 20);
        let warmup_len = (seed as usize) % (n / 2);
        for (eviction, admission, score) in
            [("lru", "always", "none"), ("gmm-score", "threshold", "fn")]
        {
            for i in 0..4u64 {
                let k = match i {
                    0 => 0,
                    1 => (seed.wrapping_mul(31).wrapping_add(i)) % (warmup_len.max(1) as u64),
                    2 => warmup_len as u64
                        + (seed.wrapping_mul(37).wrapping_add(i)) % ((n - warmup_len) as u64),
                    _ => n as u64 + 10, // past the end: serves everything
                };
                let cut = (k as usize).min(n);
                let cut_warm = warmup_len.min(cut);
                let (reference, _) = offline(
                    2, ShardRouting::Auto, window, eviction, admission, score,
                    &trace[..cut], cut_warm,
                );
                let rep = serve(
                    ServeConfig {
                        shards: 2,
                        clients: 2,
                        queue_depth: 8,
                        stop_after: Some(k),
                        params: SpecParams::with_window(window),
                        ..ServeConfig::default()
                    },
                    eviction, admission, score, &trace, warmup_len,
                ).expect("serving succeeds");
                prop_assert_eq!(rep.requests, cut as u64, "stop_after {}", k);
                prop_assert_eq!(
                    &rep.sim, &reference,
                    "shutdown at {} diverged from the truncated replay", k
                );
            }
        }
    }

    /// Armed shard-worker panics are recovered transparently: the report
    /// is still bit-identical to the undisturbed offline replay, and the
    /// fault telemetry shows every panic matched by a recovery.
    #[test]
    fn worker_deaths_are_recovered_bit_identically(
        params in (0u64..1_000_000, 200usize..600, 24u64..96)
    ) {
        let (seed, n, pages) = params;
        let trace = zipf_trace(seed, n, pages, 0.4, 25);
        let warmup_len = n / 4;
        let plan = FaultPlan {
            seed,
            shard_panic_per_mille: 1000, // every shard dies once
            ..FaultPlan::default()
        };
        for (eviction, admission, score) in
            [("lru", "always", "none"), ("gmm-score", "threshold", "fn")]
        {
            let (reference, ref_scores) = offline(
                4, ShardRouting::Auto, 128, eviction, admission, score, &trace, warmup_len,
            );
            let rep = serve(
                ServeConfig {
                    shards: 4,
                    clients: 2,
                    queue_depth: 4,
                    fault: plan,
                    ..ServeConfig::default()
                },
                eviction, admission, score, &trace, warmup_len,
            ).expect("recovery masks every armed panic");
            prop_assert_eq!(&rep.sim.stats, &reference.stats);
            prop_assert_eq!(rep.sim.total_us, reference.total_us);
            prop_assert_eq!(&rep.sim.miss_series, &reference.miss_series);
            prop_assert_eq!(rep.scores_consumed, ref_scores);
            prop_assert!(rep.sim.fault.shard_panics > 0, "plan must fire");
            prop_assert_eq!(rep.sim.fault.shard_panics, rep.sim.fault.shard_recoveries);
        }
    }
}

/// Backpressure: a depth-1 queue in front of a deliberately slow scorer
/// forces the submitter ahead of the worker. In `Shed` mode the report
/// counts every would-be drop while still serving every request — the
/// merged report stays bit-identical to the offline reference.
#[test]
fn backpressure_sheds_are_counted_and_harmless() {
    let trace = zipf_trace(7, 400, 48, 0.3, 10);
    let warmup_len = 100;
    let cache_cfg = small_cfg();
    let lat = LatencyModel::paper_tlc();
    let (warm, meas) = trace.split_at(warmup_len);

    // ~50 µs of busy work per observation: the client outruns the worker
    // by construction, so the depth-1 queue is full almost always.
    let slow_score = || {
        Some(Box::new(FnScore::new(|page, seq| {
            let mut acc = page ^ seq;
            for i in 0..20_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (acc % 100) as f64 / 100.0
        })) as Box<dyn icgmm_cache::ScoreSource + Send>)
    };

    let reference = {
        let rep = ShardedSimulator::new(1)
            .run(
                warm,
                meas,
                cache_cfg,
                &|_ctx| ShardPolicies {
                    admission: admission_for("threshold"),
                    eviction: eviction_for("lru", cache_cfg, &trace),
                    score: slow_score(),
                },
                &lat,
                Some(64),
            )
            .expect("valid geometry");
        rep.sim
    };

    let rep = CacheServer::new(ServeConfig {
        shards: 1,
        clients: 1,
        queue_depth: 1,
        submit: SubmitMode::Shed,
        ..ServeConfig::default()
    })
    .unwrap()
    .serve(
        warm,
        meas,
        cache_cfg,
        &|_ctx| ShardPolicies {
            admission: admission_for("threshold"),
            eviction: eviction_for("lru", cache_cfg, &trace),
            score: slow_score(),
        },
        &lat,
        Some(64),
    )
    .expect("serving succeeds");

    assert_eq!(rep.sim, reference, "sheds must never change outcomes");
    assert!(
        rep.sheds > 0,
        "a depth-1 queue before a ~50 µs/request worker must shed"
    );
    assert!(rep.sheds <= rep.requests);
    assert!(rep.admission_p99_us > 0.0, "histogram must have samples");
    assert!(rep.admission_p50_us <= rep.admission_p99_us);
}

/// Wide-geometry interleave stress for the ordered-flush transport: a
/// sequential scan routes consecutive records to consecutive shards, so
/// every per-shard client buffer is non-empty almost always and tiny
/// queue depths force constant blocking sends — the exact regime where a
/// mis-ordered flush would deadlock (this test hanging) or corrupt the
/// merge (a panic). More shards than clients makes each client juggle
/// several buffers at once.
#[test]
fn interleaved_scan_ordered_flush_is_deadlock_free_and_exact() {
    let n = 2000u64;
    let scan: Vec<TraceRecord> = (0..n).map(|i| TraceRecord::read((i % 509) << 12)).collect();
    let warmup_len = 250;
    for shards in [4usize, 8] {
        for clients in [1usize, 2, 3] {
            for queue_depth in [1usize, 2, 7] {
                let (reference, _) = offline(
                    shards,
                    ShardRouting::Auto,
                    128,
                    "lru",
                    "always",
                    "none",
                    &scan,
                    warmup_len,
                );
                let rep = serve(
                    ServeConfig {
                        shards,
                        clients,
                        queue_depth,
                        submit: SubmitMode::Block,
                        params: SpecParams::with_window(128),
                        ..ServeConfig::default()
                    },
                    "lru",
                    "always",
                    "none",
                    &scan,
                    warmup_len,
                )
                .expect("serving succeeds");
                assert_eq!(
                    rep.sim, reference,
                    "scan diverged at {shards} shards, {clients} clients, depth {queue_depth}"
                );
                assert_eq!(rep.sheds, 0);
            }
        }
    }
}

/// At one shard the worker decides every measured record in global order,
/// so the completion queue's inline accumulator adds exactly the same
/// `f64` values in the same order as the merge's accounting: the modeled
/// inline total is bit-identical to `sim.total_us`, pinning the
/// decision/backend split to the inline latency model.
#[test]
fn single_shard_inline_model_matches_accounted_total() {
    for (eviction, admission, score) in
        [("lru", "always", "none"), ("gmm-score", "threshold", "fn")]
    {
        let trace = zipf_trace(23, 900, 64, 0.35, 30);
        for completion_depth in [1usize, 4, 16] {
            let rep = serve(
                ServeConfig {
                    shards: 1,
                    clients: 1,
                    queue_depth: 32,
                    completion_depth,
                    ..ServeConfig::default()
                },
                eviction,
                admission,
                score,
                &trace,
                200,
            )
            .expect("serving succeeds");
            assert_eq!(
                rep.overlap.modeled_inline_us, rep.sim.total_us,
                "inline completion model drifted from the accounting \
                 ({eviction}/{admission}/{score}, depth {completion_depth})"
            );
            assert!(rep.overlap.modeled_overlapped_us <= rep.overlap.modeled_inline_us);
        }
    }
}

/// Block mode under the same slow worker: nobody sheds, nothing changes.
#[test]
fn blocking_backpressure_serves_exactly() {
    let trace = zipf_trace(11, 300, 32, 0.2, 15);
    let rep = serve(
        ServeConfig {
            shards: 2,
            clients: 2,
            queue_depth: 1,
            submit: SubmitMode::Block,
            ..ServeConfig::default()
        },
        "gmm-score",
        "threshold",
        "fn",
        &trace,
        75,
    )
    .expect("serving succeeds");
    let (reference, _) = offline(
        2,
        ShardRouting::Auto,
        256,
        "gmm-score",
        "threshold",
        "fn",
        &trace,
        75,
    );
    assert_eq!(rep.sim, reference);
    assert_eq!(rep.sheds, 0);
}
