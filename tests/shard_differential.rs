//! End-to-end differential tests for sharded replay: `Icgmm::run_sharded`
//! driven by the *real* trained GMM policy engine (f64 and fixed-point
//! datapaths) over the multi-tenant synthetic workload is bit-identical to
//! the single-threaded `Icgmm::run` at every shard count, and the
//! multi-tenant workload itself replays deterministically from its seed.

use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_cache::CacheConfig;
use icgmm_gmm::EmConfig;
use icgmm_trace::synth::{MultiTenantWorkload, Workload};
use icgmm_trace::PreprocessConfig;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The pooled-deployment scenario: 12 tenants with Zipf-skewed working
/// sets interleaving on one device, sized so the cache is under constant
/// cross-tenant pressure.
fn tenant_trace(n: usize, seed: u64) -> icgmm_trace::Trace {
    MultiTenantWorkload {
        tenants: 12,
        pages_per_tenant: 3_000,
        ..Default::default()
    }
    .generate(n, seed)
}

/// A config that trains in milliseconds, at K = 64 so the engine prefers
/// the batched replay path (speculation active inside every shard).
fn shard_cfg(fixed_point: bool) -> IcgmmConfig {
    IcgmmConfig {
        cache: CacheConfig {
            capacity_bytes: 512 * 4096,
            block_bytes: 4096,
            ways: 8,
        },
        em: EmConfig {
            k: 64,
            max_iters: 15,
            ..Default::default()
        },
        preprocess: PreprocessConfig {
            len_window: 32,
            len_access_shot: 1_000,
            ..Default::default()
        },
        max_train_cells: 20_000,
        fixed_point_inference: fixed_point,
        ..Default::default()
    }
}

#[test]
fn multi_tenant_workload_is_deterministic_from_seed() {
    let a = tenant_trace(30_000, 42);
    let b = tenant_trace(30_000, 42);
    assert_eq!(a, b, "same seed must reproduce the trace exactly");
    assert_ne!(a, tenant_trace(30_000, 43), "seed must matter");

    // ...and so must the full train + replay pipeline on top of it.
    let mut s1 = Icgmm::new(shard_cfg(false)).unwrap();
    let mut s2 = Icgmm::new(shard_cfg(false)).unwrap();
    s1.fit(&a).unwrap();
    s2.fit(&b).unwrap();
    let r1 = s1.run(&a, PolicyMode::GmmCachingEviction).unwrap();
    let r2 = s2.run(&b, PolicyMode::GmmCachingEviction).unwrap();
    assert_eq!(r1, r2);
}

#[test]
fn sharded_replay_matches_single_threaded_real_engine_both_datapaths() {
    let trace = tenant_trace(40_000, 7);
    for fixed in [false, true] {
        let base = shard_cfg(fixed);
        let mut reference_sys = Icgmm::new(base).unwrap();
        reference_sys.fit(&trace).unwrap();
        let model = reference_sys.model().expect("fitted").clone();

        for mode in [
            PolicyMode::GmmCachingOnly,
            PolicyMode::GmmEvictionOnly,
            PolicyMode::GmmCachingEviction,
        ] {
            let reference = reference_sys.run(&trace, mode).unwrap();
            assert!(
                reference.spec.is_some(),
                "K = 64 must ride the batcher (fixed={fixed}, {mode})"
            );
            for shards in SHARD_COUNTS {
                let mut cfg = base;
                cfg.sim_shards = shards;
                let mut sys = Icgmm::new(cfg).unwrap();
                sys.set_model(model.clone());
                let sharded = sys.run_sharded(&trace, mode).unwrap();
                assert_eq!(
                    reference.sim, sharded.sim,
                    "fixed={fixed}, {mode} diverged at {shards} shards"
                );
                let spec = sharded.spec.expect("batched routing reports telemetry");
                assert!(
                    spec.batched_scores > 0,
                    "fixed={fixed}, {mode} at {shards} shards never batched: {spec:?}"
                );
                if shards == 1 {
                    assert_eq!(reference.spec, sharded.spec, "fixed={fixed}, {mode}");
                    assert_eq!(
                        reference.gmm_inferences, sharded.gmm_inferences,
                        "fixed={fixed}, {mode}"
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_replay_is_deterministic_across_repeat_runs() {
    let trace = tenant_trace(30_000, 99);
    let mut cfg = shard_cfg(false);
    cfg.sim_shards = 4;
    let mut sys = Icgmm::new(cfg).unwrap();
    sys.fit(&trace).unwrap();
    let a = sys
        .run_sharded(&trace, PolicyMode::GmmCachingEviction)
        .unwrap();
    let b = sys
        .run_sharded(&trace, PolicyMode::GmmCachingEviction)
        .unwrap();
    assert_eq!(a, b, "thread scheduling leaked into the report");
}
