//! Integration tests: the batched dataflow replay driven by the *real*
//! trained GMM policy engine (f64 and fixed-point datapaths) produces a
//! `DataflowReport` bit-identical — stats and every timing field — to the
//! streaming dataflow reference, and `Icgmm::run_dataflow` rides the
//! batched engine by default at paper-scale K.

use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_cache::{CacheConfig, GmmScorePolicy, ScoreSource, SpecParams, ThresholdAdmit};
use icgmm_gmm::EmConfig;
use icgmm_hw::{
    run_dataflow_batched_with_warmup, run_dataflow_streaming_with_warmup, DataflowConfig,
};
use icgmm_testutil::{conflict_trace, hand_engine};
use icgmm_trace::synth::WorkloadKind;
use icgmm_trace::{PreprocessConfig, TraceRecord};

#[test]
fn gmm_engine_batched_dataflow_is_bit_identical_both_datapaths() {
    let cfg = CacheConfig {
        capacity_bytes: 64 * 4096,
        block_bytes: 4096,
        ways: 8,
    };
    let trace = conflict_trace(8_000, 160, 21);
    let (warm, meas) = trace.split_at(1_600);

    for fixed in [false, true] {
        for overlap in [true, false] {
            let df_cfg = DataflowConfig {
                overlap_policy_with_ssd: overlap,
                ..Default::default()
            };
            // The paper's gmm-both stack: threshold admission +
            // stored-score eviction — the combination that exercises run
            // splits, bypass phantoms and rollback under the timer.
            let mut ev1 = GmmScorePolicy::new(cfg.num_sets(), cfg.ways);
            let mut ad1 = ThresholdAdmit::new(-6.0);
            let mut e1 = hand_engine(64, fixed);
            let streaming = run_dataflow_streaming_with_warmup(
                warm,
                meas,
                cfg,
                &mut ad1,
                &mut ev1,
                Some(&mut e1 as &mut dyn ScoreSource),
                &df_cfg,
            )
            .unwrap();

            let mut ev2 = GmmScorePolicy::new(cfg.num_sets(), cfg.ways);
            let mut ad2 = ThresholdAdmit::new(-6.0);
            let mut e2 = hand_engine(64, fixed);
            let batched = run_dataflow_batched_with_warmup(
                warm,
                meas,
                cfg,
                &mut ad2,
                &mut ev2,
                Some(&mut e2 as &mut dyn ScoreSource),
                &df_cfg,
                SpecParams::with_window(512),
            )
            .unwrap();

            let spec = batched.spec.expect("batched replay reports telemetry");
            assert!(
                spec.batched_scores > 0,
                "fixed={fixed} overlap={overlap}: {spec:?}"
            );
            let mut stripped = batched.clone();
            stripped.spec = None;
            assert_eq!(streaming, stripped, "fixed={fixed} overlap={overlap}");

            // The Algorithm 1 clock advanced identically on both engines:
            // the next observation scores bit-equal.
            let probe = TraceRecord::read(99 << 12);
            e1.observe(&probe);
            e2.observe(&probe);
            assert_eq!(
                e1.score_current().to_bits(),
                e2.score_current().to_bits(),
                "fixed={fixed} overlap={overlap}"
            );
        }
    }
}

#[test]
fn system_dataflow_default_matches_explicit_streaming_replay() {
    // `Icgmm::run_dataflow` (batched by default at K >= 64) must agree
    // with a hand-driven streaming dataflow replay of the same trained
    // model and policies — timing fields included.
    let cfg = IcgmmConfig {
        cache: CacheConfig {
            capacity_bytes: 128 * 4096,
            block_bytes: 4096,
            ways: 8,
        },
        em: EmConfig {
            k: 64,
            max_iters: 8,
            ..Default::default()
        },
        preprocess: PreprocessConfig {
            len_window: 32,
            len_access_shot: 1_000,
            ..Default::default()
        },
        max_train_cells: 5_000,
        ..Default::default()
    };
    let trace = WorkloadKind::Memtier
        .default_workload()
        .generate(30_000, 17);
    let mut sys = Icgmm::new(cfg).unwrap();
    sys.fit(&trace).unwrap();
    let df_cfg = DataflowConfig::default();
    let run = sys
        .run_dataflow(&trace, PolicyMode::GmmCachingEviction, &df_cfg)
        .unwrap();
    let spec = run.spec.expect("gmm mode batches the dataflow replay");
    assert!(spec.batched_scores > 0, "{spec:?}");

    // Hand-driven streaming dataflow reference with an identical stack.
    let (start, end) = cfg.preprocess.kept_range(trace.len());
    let (warm, meas) = (&trace.records()[..start], &trace.records()[start..end]);
    let mut ev = GmmScorePolicy::new(cfg.cache.num_sets(), cfg.cache.ways);
    let mut ad = ThresholdAdmit::new(sys.model().unwrap().threshold);
    let mut eng = sys.policy_engine().unwrap();
    let streaming = run_dataflow_streaming_with_warmup(
        warm,
        meas,
        cfg.cache,
        &mut ad,
        &mut ev,
        Some(&mut eng as &mut dyn ScoreSource),
        &df_cfg,
    )
    .unwrap();
    let mut stripped = run.clone();
    stripped.spec = None;
    assert_eq!(streaming, stripped);
}
