//! End-to-end differential tests for the serving front-end:
//! `Icgmm::serve` driven by the *real* trained GMM policy engine over the
//! multi-tenant synthetic workload re-accounts bit-identically to both
//! the single-threaded `Icgmm::run` and the offline sharded
//! `Icgmm::run_sharded`, for every serving geometry (shards × clients ×
//! queue depth) — concurrency buys throughput, never decisions.

use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_cache::CacheConfig;
use icgmm_gmm::EmConfig;
use icgmm_trace::synth::{MultiTenantWorkload, Workload};
use icgmm_trace::PreprocessConfig;

/// The pooled-deployment scenario: 12 tenants with Zipf-skewed working
/// sets interleaving on one device, under constant cross-tenant pressure.
fn tenant_trace(n: usize, seed: u64) -> icgmm_trace::Trace {
    MultiTenantWorkload {
        tenants: 12,
        pages_per_tenant: 3_000,
        ..Default::default()
    }
    .generate(n, seed)
}

/// A config that trains in milliseconds, at K = 64 so the engine prefers
/// the batched replay path (serving workers speculate per chunk).
fn serve_cfg() -> IcgmmConfig {
    IcgmmConfig {
        cache: CacheConfig {
            capacity_bytes: 512 * 4096,
            block_bytes: 4096,
            ways: 8,
        },
        em: EmConfig {
            k: 64,
            max_iters: 15,
            ..Default::default()
        },
        preprocess: PreprocessConfig {
            len_window: 32,
            len_access_shot: 1_000,
            ..Default::default()
        },
        max_train_cells: 20_000,
        ..Default::default()
    }
}

#[test]
fn served_reports_match_offline_replay_real_engine() {
    let trace = tenant_trace(24_000, 7);
    let base = serve_cfg();
    let mut reference_sys = Icgmm::new(base).unwrap();
    reference_sys.fit(&trace).unwrap();
    let model = reference_sys.model().expect("fitted").clone();

    for mode in [
        PolicyMode::Lru,
        PolicyMode::Belady,
        PolicyMode::GmmCachingEviction,
    ] {
        let reference = reference_sys.run(&trace, mode).unwrap();
        // Serving-only knobs must never show up in the merged report:
        // single worker, many clients over few shards, deep sharding
        // with depth-1 queues (permanent backpressure).
        for (shards, clients, depth) in [(1, 1, 64), (2, 3, 8), (4, 2, 1)] {
            let mut cfg = base;
            cfg.sim_shards = shards;
            cfg.serve_clients = clients;
            cfg.serve_queue_depth = depth;
            let mut sys = Icgmm::new(cfg).unwrap();
            sys.set_model(model.clone());

            let served = sys.serve(&trace, mode).unwrap();
            assert_eq!(
                served.sim, reference.sim,
                "{mode} diverged from single-threaded at {shards} shards / \
                 {clients} clients / depth {depth}"
            );
            let sharded = sys.run_sharded(&trace, mode).unwrap();
            assert_eq!(
                served.sim, sharded.sim,
                "{mode} diverged from offline sharded replay at {shards} shards"
            );

            assert!(served.requests > 0);
            assert_eq!(served.shards, shards);
            assert_eq!(served.clients, clients.min(shards));
            assert_eq!(served.sheds, 0, "Block mode never sheds");
            assert!(served.requests_per_sec > 0.0);
            assert!(served.wall_us > 0.0);
            assert!(served.admission_p50_us <= served.admission_p99_us);
            if mode == PolicyMode::GmmCachingEviction {
                assert!(served.batched, "K = 64 must ride the batcher");
                assert!(served.scores_consumed > 0);
                assert!(
                    served.spec.scores_computed() >= served.scores_consumed,
                    "speculation computes at least what the replay consumes"
                );
            }
        }
    }
}

#[test]
fn serving_is_deterministic_across_repeat_runs() {
    let trace = tenant_trace(20_000, 99);
    let mut cfg = serve_cfg();
    cfg.sim_shards = 4;
    cfg.serve_clients = 2;
    cfg.serve_queue_depth = 16;
    let mut sys = Icgmm::new(cfg).unwrap();
    sys.fit(&trace).unwrap();
    let a = sys.serve(&trace, PolicyMode::GmmCachingEviction).unwrap();
    let b = sys.serve(&trace, PolicyMode::GmmCachingEviction).unwrap();
    // Timing fields differ run to run; every semantic field must not.
    assert_eq!(a.sim, b.sim, "thread scheduling leaked into the report");
    assert_eq!(a.scores_consumed, b.scores_consumed);
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.sheds, b.sheds);
}

#[test]
fn serving_rejects_random_above_one_shard() {
    let trace = tenant_trace(5_000, 3);
    let mut cfg = serve_cfg();
    cfg.sim_shards = 2;
    let sys = Icgmm::new(cfg).unwrap();
    assert!(sys.serve(&trace, PolicyMode::Random).is_err());
    let mut cfg1 = serve_cfg();
    cfg1.sim_shards = 1;
    let sys1 = Icgmm::new(cfg1).unwrap();
    let served = sys1.serve(&trace, PolicyMode::Random).unwrap();
    let reference = sys1.run(&trace, PolicyMode::Random).unwrap();
    assert_eq!(served.sim, reference.sim, "one-shard random must agree");
}
