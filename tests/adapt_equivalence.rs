//! End-to-end equivalence and determinism properties for online
//! adaptation: an armed plan whose drift trigger is held off
//! (`drift_drop = +inf`) replays bit-identically to the static scorer at
//! every shard count and GMM policy mode; adaptive runs are a pure
//! function of `(trace seed, adapt seed)` per shard count; and the
//! serving front-end re-accounts adaptive replay exactly like the
//! offline sharded engine.

use std::sync::OnceLock;

use icgmm::experiment::run_static_vs_adaptive;
use icgmm::{AdaptPlan, Icgmm, IcgmmConfig, PolicyMode, TrainedModel};
use icgmm_cache::CacheConfig;
use icgmm_gmm::EmConfig;
use icgmm_trace::synth::{MultiTenantWorkload, Workload};
use icgmm_trace::{PreprocessConfig, Trace};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

const GMM_MODES: [PolicyMode; 3] = [
    PolicyMode::GmmCachingOnly,
    PolicyMode::GmmEvictionOnly,
    PolicyMode::GmmCachingEviction,
];

/// The pooled-deployment scenario with *fast* phase rotation: each
/// tenant's hot window advances every ~1.5k of its own requests, so a
/// 30k-record trace crosses many popularity phases and a sensitive
/// detector has real drift to find.
fn rotating_trace(n: usize, seed: u64) -> Trace {
    MultiTenantWorkload {
        tenants: 12,
        pages_per_tenant: 3_000,
        phase_len: 1_500,
        ..Default::default()
    }
    .generate(n, seed)
}

/// A config that trains in milliseconds, at K = 64 so the engine prefers
/// the batched replay path (the segmented-window logic is exercised, not
/// just the per-record one).
fn adapt_cfg() -> IcgmmConfig {
    IcgmmConfig {
        cache: CacheConfig {
            capacity_bytes: 512 * 4096,
            block_bytes: 4096,
            ways: 8,
        },
        em: EmConfig {
            k: 64,
            max_iters: 15,
            ..Default::default()
        },
        preprocess: PreprocessConfig {
            len_window: 32,
            len_access_shot: 1_000,
            ..Default::default()
        },
        max_train_cells: 20_000,
        ..Default::default()
    }
}

/// Trace + model trained once and shared across every test and proptest
/// case — replays are cheap, EM is not.
fn fixture() -> &'static (Trace, TrainedModel) {
    static FIXTURE: OnceLock<(Trace, TrainedModel)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let trace = rotating_trace(30_000, 42);
        let mut sys = Icgmm::new(adapt_cfg()).unwrap();
        sys.fit(&trace).unwrap();
        let model = sys.model().expect("fitted").clone();
        (trace, model)
    })
}

fn system_with(plan: AdaptPlan, shards: usize) -> Icgmm {
    let (_, model) = fixture();
    let mut cfg = adapt_cfg();
    cfg.adapt = plan;
    cfg.sim_shards = shards;
    let mut sys = Icgmm::new(cfg).unwrap();
    sys.set_model(model.clone());
    sys
}

/// An armed plan whose detector can never fire: checks run, buffers
/// fill, the scorer never swaps.
fn held_off(seed: u64) -> AdaptPlan {
    AdaptPlan {
        drift_drop: f64::INFINITY,
        check_interval: 2_048,
        ..AdaptPlan::drifty(seed)
    }
}

#[test]
fn empty_plan_runs_leave_adapt_telemetry_clean() {
    let (trace, _) = fixture();
    let sys = system_with(AdaptPlan::empty(), 2);
    let rep = sys.run_sharded(trace, PolicyMode::GmmCachingEviction).unwrap();
    assert!(
        rep.sim.adapt.is_clean(),
        "an empty plan must never touch the adaptation loop: {:?}",
        rep.sim.adapt
    );
}

#[test]
fn held_off_trigger_is_bit_identical_to_static_across_shards_and_modes() {
    let (trace, _) = fixture();
    for mode in GMM_MODES {
        let reference_sys = system_with(AdaptPlan::empty(), 1);
        let reference = reference_sys.run(trace, mode).unwrap();
        assert!(reference.sim.adapt.is_clean());

        for shards in SHARD_COUNTS {
            let sys = system_with(held_off(9), shards);
            let adaptive = if shards == 1 {
                sys.run(trace, mode).unwrap()
            } else {
                sys.run_sharded(trace, mode).unwrap()
            };
            assert!(
                adaptive.sim.adapt.checks > 0,
                "{mode} at {shards} shards: the armed plan must actually check"
            );
            assert_eq!(
                adaptive.sim.adapt.swaps, 0,
                "{mode} at {shards} shards: +inf drift_drop must hold refits off"
            );
            assert_eq!(adaptive.sim.adapt.refits, 0);

            // Modulo its own telemetry the adaptive run is the static run.
            let mut scrubbed = adaptive.sim.clone();
            scrubbed.adapt = Default::default();
            assert_eq!(
                scrubbed, reference.sim,
                "{mode} at {shards} shards: held-off adaptation changed decisions"
            );
            if shards == 1 {
                assert_eq!(
                    adaptive.gmm_inferences, reference.gmm_inferences,
                    "{mode}: drift checks must not inflate the inference count"
                );
            }
        }
    }
}

#[test]
fn adaptive_serving_matches_offline_sharded_replay() {
    let (trace, _) = fixture();
    let plan = AdaptPlan::drifty(7);
    for (shards, clients, depth) in [(1, 1, 64), (2, 3, 8), (4, 2, 1)] {
        let mut cfg = adapt_cfg();
        cfg.adapt = plan;
        cfg.sim_shards = shards;
        cfg.serve_clients = clients;
        cfg.serve_queue_depth = depth;
        let mut sys = Icgmm::new(cfg).unwrap();
        sys.set_model(fixture().1.clone());

        let served = sys.serve(trace, PolicyMode::GmmCachingEviction).unwrap();
        let sharded = sys
            .run_sharded(trace, PolicyMode::GmmCachingEviction)
            .unwrap();
        assert_eq!(
            served.sim, sharded.sim,
            "adaptive serve diverged from offline replay at {shards} shards / \
             {clients} clients / depth {depth}"
        );
        assert_eq!(served.sim.adapt, sharded.sim.adapt);
    }
}

#[test]
fn static_vs_adaptive_repairs_drift_on_the_rotating_workload() {
    let (trace, _) = fixture();
    let mut cfg = adapt_cfg();
    cfg.adapt = AdaptPlan::drifty(3);
    let cmp = run_static_vs_adaptive(
        "adapt-it",
        trace,
        cfg,
        PolicyMode::GmmCachingEviction,
        trace.len() / 3,
    )
    .unwrap();
    assert!(cmp.static_run.adapt.is_clean(), "the static arm never adapts");
    assert!(
        cmp.adaptive_run.adapt.swaps > 0,
        "the rotating workload must trip the detector: {:?}",
        cmp.adaptive_run.adapt
    );
    assert_eq!(cmp.adaptive_run.adapt.swaps, cmp.adaptive_run.adapt.refits);
    assert!(cmp.miss_improvement_pts().is_finite());
}

proptest! {
    /// An adaptive run is a pure function of `(trace seed, adapt seed)`
    /// at every shard count: repeat runs are identical down to the
    /// adaptation counters, and the serving path agrees with offline
    /// sharded replay under live refits.
    #[test]
    fn adaptive_runs_are_deterministic_from_seeds(
        adapt_seed in any::<u64>(),
        shard_ix in 0usize..SHARD_COUNTS.len(),
        mode_ix in 0usize..GMM_MODES.len(),
    ) {
        let (trace, _) = fixture();
        let shards = SHARD_COUNTS[shard_ix];
        let mode = GMM_MODES[mode_ix];
        let sys = system_with(AdaptPlan::drifty(adapt_seed), shards);
        let a = sys.run_sharded(trace, mode).unwrap();
        let b = sys.run_sharded(trace, mode).unwrap();
        prop_assert_eq!(
            &a, &b,
            "adaptive replay must be deterministic at {} shards ({:?})",
            shards, mode
        );
        prop_assert!(a.sim.adapt.checks > 0);
    }
}
