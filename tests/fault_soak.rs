//! Chaos soak: the full train + replay pipeline survives a seeded
//! mixed-fault storm — scorer corruption, engine outages, shard-worker
//! panics, device failures and divergence storms all armed at once — with
//! zero aborts, and both the replay accounting and every fault counter
//! reproduce bit-for-bit from `(plan seed, trace seed)`.

use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_cache::{CacheConfig, FaultPlan};
use icgmm_gmm::EmConfig;
use icgmm_hw::DataflowConfig;
use icgmm_trace::synth::{MultiTenantWorkload, Workload};
use icgmm_trace::PreprocessConfig;

/// Cross-tenant cache pressure keeps miss (and therefore scoring/SSD)
/// traffic high enough for every armed fault class to actually fire.
fn tenant_trace(n: usize, seed: u64) -> icgmm_trace::Trace {
    MultiTenantWorkload {
        tenants: 12,
        pages_per_tenant: 3_000,
        ..Default::default()
    }
    .generate(n, seed)
}

/// Fast-training config at K = 64 so the engine prefers the batched
/// replay path (the breaker rung only exists there).
fn soak_cfg(fault: FaultPlan, shards: usize) -> IcgmmConfig {
    IcgmmConfig {
        cache: CacheConfig {
            capacity_bytes: 512 * 4096,
            block_bytes: 4096,
            ways: 8,
        },
        em: EmConfig {
            k: 64,
            max_iters: 15,
            ..Default::default()
        },
        preprocess: PreprocessConfig {
            len_window: 32,
            len_access_shot: 1_000,
            ..Default::default()
        },
        max_train_cells: 20_000,
        sim_shards: shards,
        fault,
        ..Default::default()
    }
}

#[test]
fn chaos_soak_sharded_replay_never_aborts_and_reproduces() {
    let trace = tenant_trace(30_000, 42);
    let mut sys = Icgmm::new(soak_cfg(FaultPlan::chaos(1234), 4)).unwrap();
    sys.fit(&trace).unwrap();

    // Zero aborts: armed shard panics are recovered by the supervisor, so
    // the chaos run returns Ok rather than propagating a failure.
    let a = sys
        .run_sharded(&trace, PolicyMode::GmmCachingEviction)
        .unwrap();
    assert!(a.sim.fault.injected() > 0, "chaos plan injected nothing");
    assert!(
        a.sim.fault.shard_panics > 0,
        "500‰ arming should panic some of 4 shards"
    );
    assert_eq!(
        a.sim.fault.shard_panics, a.sim.fault.shard_recoveries,
        "every armed panic must be recovered"
    );
    assert!(a.sim.stats.accesses() > 0);

    let b = sys
        .run_sharded(&trace, PolicyMode::GmmCachingEviction)
        .unwrap();
    assert_eq!(a, b, "chaos replay must reproduce from its seeds");
}

#[test]
fn chaos_soak_single_threaded_replay_reproduces() {
    let trace = tenant_trace(30_000, 42);
    let plan = FaultPlan {
        // Aggressive scorer corruption plus a hair-trigger breaker so both
        // the monitor and breaker rungs engage in one run.
        scorer_nan_per_mille: 200,
        scorer_outage_per_mille: 5,
        scorer_outage_len: 64,
        breaker_storm_windows: 1,
        breaker_cooldown_records: 256,
        scorer_demote_after: 4,
        scorer_promote_after: 16,
        ..FaultPlan::chaos(77)
    };
    let mut sys = Icgmm::new(soak_cfg(plan, 1)).unwrap();
    sys.fit(&trace).unwrap();

    let a = sys.run(&trace, PolicyMode::GmmCachingEviction).unwrap();
    assert!(a.sim.fault.scorer_nan_injected > 0, "no scores corrupted");
    assert!(
        a.sim.fault.scorer_demotions > 0,
        "monitor rung never engaged"
    );
    assert!(a.sim.fault.degraded_victims > 0, "LRU fallback never used");
    assert!(
        a.sim.fault.degraded_admits > 0,
        "always-admit fallback never used"
    );

    let b = sys.run(&trace, PolicyMode::GmmCachingEviction).unwrap();
    assert_eq!(a, b, "fault-armed replay must reproduce from its seeds");
}

#[test]
fn config_fault_plan_propagates_into_the_dataflow_model() {
    let trace = tenant_trace(20_000, 9);
    let plan = FaultPlan {
        device_fail_per_mille: 100,
        device_spike_per_mille: 60,
        ..FaultPlan::empty()
    };
    // The DataflowConfig carries no plan of its own; the system-level
    // IcgmmConfig::fault must reach the SSD emulator.
    let sys = Icgmm::new(soak_cfg(plan, 1)).unwrap();
    let a = sys
        .run_dataflow(&trace, PolicyMode::Lru, &DataflowConfig::default())
        .unwrap();
    assert!(
        a.fault.device_failures + a.fault.device_spikes > 0,
        "IcgmmConfig::fault never reached the device model"
    );
    assert!(a.fault.device_fault_us > 0.0);

    let b = sys
        .run_dataflow(&trace, PolicyMode::Lru, &DataflowConfig::default())
        .unwrap();
    assert_eq!(a, b, "device-fault timing must be deterministic");
}
