//! Chaos soak for the serving front-end: the concurrent service survives
//! a seeded mixed-fault storm — scorer corruption, engine outages,
//! shard-worker panics mid-service and the degradation ladder all armed
//! at once, under multi-tenant cache pressure — with zero aborts, and the
//! semantic half of the report reproduces bit-for-bit across repeat
//! serves despite nondeterministic queue timing.

use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_cache::{CacheConfig, FaultPlan};
use icgmm_gmm::EmConfig;
use icgmm_trace::synth::{MultiTenantWorkload, Workload};
use icgmm_trace::PreprocessConfig;

/// Cross-tenant cache pressure keeps miss (and therefore scoring)
/// traffic high enough for every armed fault class to actually fire.
fn tenant_trace(n: usize, seed: u64) -> icgmm_trace::Trace {
    MultiTenantWorkload {
        tenants: 12,
        pages_per_tenant: 3_000,
        ..Default::default()
    }
    .generate(n, seed)
}

/// Fast-training config at K = 64, serving over `shards` workers fed by
/// 3 clients through deliberately shallow queues (constant backpressure).
fn soak_cfg(fault: FaultPlan, shards: usize) -> IcgmmConfig {
    IcgmmConfig {
        cache: CacheConfig {
            capacity_bytes: 512 * 4096,
            block_bytes: 4096,
            ways: 8,
        },
        em: EmConfig {
            k: 64,
            max_iters: 15,
            ..Default::default()
        },
        preprocess: PreprocessConfig {
            len_window: 32,
            len_access_shot: 1_000,
            ..Default::default()
        },
        max_train_cells: 20_000,
        sim_shards: shards,
        serve_clients: 3,
        serve_queue_depth: 8,
        fault,
        ..Default::default()
    }
}

#[test]
fn chaos_soak_serving_never_aborts_and_reproduces() {
    let trace = tenant_trace(30_000, 42);
    let mut sys = Icgmm::new(soak_cfg(FaultPlan::chaos(1234), 4)).unwrap();
    sys.fit(&trace).unwrap();

    // Zero aborts: armed worker panics are recovered by the supervisor
    // mid-service, so the chaos serve returns Ok.
    let a = sys.serve(&trace, PolicyMode::GmmCachingEviction).unwrap();
    assert!(
        !a.batched,
        "armed scorer faults must route serving workers to streaming"
    );
    assert!(a.sim.fault.injected() > 0, "chaos plan injected nothing");
    assert!(
        a.sim.fault.shard_panics > 0,
        "500‰ arming should panic some of 4 workers"
    );
    assert_eq!(
        a.sim.fault.shard_panics, a.sim.fault.shard_recoveries,
        "every armed panic must be recovered"
    );
    assert!(a.sim.stats.accesses() > 0);
    assert!(a.requests > 0);
    assert!(a.requests_per_sec > 0.0);

    // Queue timing, chunk boundaries and scheduling vary run to run; the
    // semantic half of the report must not.
    let b = sys.serve(&trace, PolicyMode::GmmCachingEviction).unwrap();
    assert_eq!(a.sim, b.sim, "served chaos replay must reproduce");
    assert_eq!(a.scores_consumed, b.scores_consumed);
    assert_eq!(a.sheds, b.sheds, "Block mode sheds nothing, always");
}

#[test]
fn worker_panics_leave_served_results_untouched_real_engine() {
    let trace = tenant_trace(20_000, 9);
    let base = soak_cfg(FaultPlan::empty(), 4);
    let mut clean_sys = Icgmm::new(base).unwrap();
    clean_sys.fit(&trace).unwrap();
    let model = clean_sys.model().expect("fitted").clone();
    let clean = clean_sys
        .serve(&trace, PolicyMode::GmmCachingEviction)
        .unwrap();
    assert!(clean.batched, "panic-only plans keep the batched routing");
    assert_eq!(clean.sim.fault.shard_panics, 0);

    // Kill every worker once, mid-service, while the batcher speculates.
    let panicky = FaultPlan {
        seed: 5,
        shard_panic_per_mille: 1000,
        ..FaultPlan::empty()
    };
    let mut sys = Icgmm::new(soak_cfg(panicky, 4)).unwrap();
    sys.set_model(model);
    let served = sys.serve(&trace, PolicyMode::GmmCachingEviction).unwrap();
    assert_eq!(served.sim.fault.shard_panics, 4, "1000‰ kills all four");
    assert_eq!(served.sim.fault.shard_recoveries, 4);
    assert_eq!(
        served.sim.stats, clean.sim.stats,
        "recovery must reproduce the undisturbed outcomes"
    );
    assert_eq!(served.sim.total_us, clean.sim.total_us);
    assert_eq!(served.scores_consumed, clean.scores_consumed);
}
