//! Property tests over the trace substrate: serialization round-trips,
//! generator determinism and conservation laws of the preprocessing and
//! histogram pipelines.

use icgmm_trace::histogram::{SpatialHistogram, TemporalHeatmap};
use icgmm_trace::io::{read_text, write_text};
use icgmm_trace::synth::WorkloadKind;
use icgmm_trace::{extract_weighted_cells, trim, Op, PreprocessConfig, Trace, TraceRecord, Zipf};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((any::<bool>(), 0u64..(1 << 40)), 0..300).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(w, addr)| {
                if w {
                    TraceRecord::write(addr)
                } else {
                    TraceRecord::read(addr)
                }
            })
            .collect()
    })
}

proptest! {
    /// Text serialization is lossless for arbitrary traces.
    #[test]
    fn io_round_trip(trace in arb_trace()) {
        let mut buf = Vec::new();
        write_text(&trace, &mut buf).expect("write to memory");
        let back = read_text(buf.as_slice()).expect("parse back");
        prop_assert_eq!(back, trace);
    }

    /// Trimming keeps a contiguous middle slice: total = prefix + kept +
    /// suffix, and kept records match the original by position.
    #[test]
    fn trim_is_a_contiguous_slice(
        trace in arb_trace(),
        warm in 0.0f64..0.5,
        tail in 0.0f64..0.4,
    ) {
        let cfg = PreprocessConfig {
            warmup_frac: warm,
            tail_frac: tail,
            ..Default::default()
        };
        prop_assume!(cfg.validate().is_ok());
        let kept = trim(&trace, &cfg);
        let (start, end) = cfg.kept_range(trace.len());
        prop_assert_eq!(kept.len(), end - start);
        for (i, r) in kept.iter().enumerate() {
            prop_assert_eq!(r, &trace.records()[start + i]);
        }
    }

    /// Weighted-cell extraction conserves request mass and never invents
    /// pages.
    #[test]
    fn cell_extraction_conserves_mass(trace in arb_trace()) {
        let cfg = PreprocessConfig {
            len_window: 8,
            len_access_shot: 64,
            ..Default::default()
        };
        let cells = extract_weighted_cells(trace.records(), &cfg);
        let total: f64 = cells.iter().map(|c| c.weight).sum();
        prop_assert_eq!(total as usize, trace.len());
        let pages: std::collections::HashSet<u64> =
            trace.iter().map(|r| r.page().raw()).collect();
        for c in &cells {
            prop_assert!(pages.contains(&(c.page as u64)), "invented page {}", c.page);
            prop_assert!(c.time < 64.0);
        }
    }

    /// Spatial histograms and temporal heat maps conserve access counts.
    #[test]
    fn histograms_conserve_counts(trace in arb_trace(), buckets in 1usize..40) {
        let h = SpatialHistogram::from_records(trace.records(), buckets);
        prop_assert_eq!(h.total(), trace.len() as u64);
        let hm = TemporalHeatmap::from_records(
            trace.records(),
            &PreprocessConfig::default(),
            4,
            6,
        );
        let total: u64 = (0..4).flat_map(|r| (0..6).map(move |c| (r, c)))
            .map(|(r, c)| hm.at(r, c))
            .sum();
        prop_assert_eq!(total, trace.len() as u64);
    }

    /// Zipf samples stay in range for arbitrary parameters.
    #[test]
    fn zipf_samples_in_range(n in 1u64..100_000, s in 0.1f64..3.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = Zipf::new(n, s).expect("valid parameters");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Every workload generator honours its request budget exactly and is
    /// deterministic in its seed.
    #[test]
    fn generators_are_exact_and_deterministic(
        kind_idx in 0usize..7,
        n in 1usize..3_000,
        seed in any::<u64>(),
    ) {
        let kind = WorkloadKind::all()[kind_idx];
        let w = kind.default_workload();
        let a = w.generate(n, seed);
        prop_assert_eq!(a.len(), n, "{} wrong length", kind);
        let b = w.generate(n, seed);
        prop_assert_eq!(a, b, "{} not deterministic", kind);
    }
}

#[test]
fn read_write_ops_survive_the_full_pipeline() {
    // Deterministic companion: a mixed trace keeps its op mix through
    // serialize → parse → trim.
    let trace: Trace = (0..100u64)
        .map(|i| {
            if i % 3 == 0 {
                TraceRecord::write(i << 12)
            } else {
                TraceRecord::read(i << 12)
            }
        })
        .collect();
    let mut buf = Vec::new();
    write_text(&trace, &mut buf).unwrap();
    let back = read_text(buf.as_slice()).unwrap();
    let kept = trim(&back, &PreprocessConfig::default());
    let writes = kept.iter().filter(|r| r.op == Op::Write).count();
    assert!(writes > 0 && writes < kept.len());
}
