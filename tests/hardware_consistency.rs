//! Integration tests tying the hardware model to the analytic simulator
//! and to the paper's published hardware numbers.

use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_gmm::EmConfig;
use icgmm_hw::{
    table2, CacheEngineModel, DataflowConfig, GmmEngineModel, GmmResourceModel, SsdProfile,
};
use icgmm_lstm::{LstmArch, LstmCostModel};
use icgmm_trace::synth::WorkloadKind;

fn test_config() -> IcgmmConfig {
    IcgmmConfig {
        em: EmConfig {
            k: 16,
            max_iters: 20,
            ..Default::default()
        },
        max_train_cells: 10_000,
        ..IcgmmConfig::default()
    }
}

#[test]
fn paper_latency_constants_line_up() {
    // The three numbers the paper measures on-board (§5.3).
    assert!((CacheEngineModel::paper_default().hit_us() - 1.0).abs() < 0.01);
    assert!((GmmEngineModel::paper_k256().latency_us() - 3.0).abs() < 0.01);
    let ssd = SsdProfile::tlc();
    assert_eq!(ssd.read_us, 75.0);
    assert_eq!(ssd.write_us, 900.0);
    // GMM inference must overlap entirely with any SSD access.
    assert!(GmmEngineModel::paper_k256().latency_us() < ssd.read_us);
}

#[test]
fn table2_gap_exceeds_ten_thousand_x() {
    let gmm_us = GmmEngineModel::paper_k256().latency_us();
    let lstm_us = LstmCostModel::paper_calibrated()
        .estimate(&LstmArch::paper_baseline())
        .latency_us;
    let gain = lstm_us / gmm_us;
    assert!(gain > 10_000.0, "latency gain only {gain:.0}x");
    // And the published ratio is ~15,433x; our model should be within 2x.
    let published = table2::LSTM_LATENCY_US / table2::GMM_LATENCY_US;
    assert!(
        gain > published / 2.0 && gain < published * 2.0,
        "gain {gain:.0}x vs published {published:.0}x"
    );
}

#[test]
fn resource_models_reproduce_table2_rows() {
    let gmm = GmmResourceModel::paper_k256().estimate();
    assert_eq!(gmm.dsp, table2::GMM.dsp);
    assert!((i64::from(gmm.bram_36k) - i64::from(table2::GMM.bram_36k)).abs() <= 2);

    let lstm = LstmCostModel::paper_calibrated().estimate(&LstmArch::paper_baseline());
    assert_eq!(lstm.dsp, table2::LSTM.dsp);
    // BRAM ratio is the paper's headline "~2% of on-chip memory".
    let ratio = f64::from(gmm.bram_36k) / f64::from(lstm.bram_36k);
    assert!(ratio < 0.06, "GMM/LSTM BRAM ratio {ratio:.3}");
}

#[test]
fn dataflow_model_matches_analytic_model_end_to_end() {
    let trace = WorkloadKind::Memtier
        .default_workload()
        .generate(60_000, 31);
    let mut sys = Icgmm::new(test_config()).expect("valid config");
    sys.fit(&trace).expect("training succeeds");

    for mode in [PolicyMode::Lru, PolicyMode::GmmCachingEviction] {
        let analytic = sys.run(&trace, mode).expect("analytic run");
        let dataflow = sys
            .run_dataflow(&trace, mode, &DataflowConfig::default())
            .expect("dataflow run");
        assert_eq!(
            analytic.sim.stats, dataflow.stats,
            "{mode}: functional behaviour diverged between models"
        );
        let rel = (dataflow.avg_request_us - analytic.avg_us()).abs() / analytic.avg_us();
        assert!(
            rel < 0.05,
            "{mode}: dataflow {:.3} µs vs analytic {:.3} µs",
            dataflow.avg_request_us,
            analytic.avg_us()
        );
    }
}

#[test]
fn disabling_overlap_costs_exactly_the_policy_latency_per_miss() {
    let trace = WorkloadKind::Stream.default_workload().generate(60_000, 32);
    let mut sys = Icgmm::new(test_config()).expect("valid config");
    sys.fit(&trace).expect("training succeeds");

    let run = |overlap| {
        sys.run_dataflow(
            &trace,
            PolicyMode::GmmCachingEviction,
            &DataflowConfig {
                overlap_policy_with_ssd: overlap,
                ..Default::default()
            },
        )
        .expect("dataflow run")
    };
    let with = run(true);
    let without = run(false);
    let misses = with.stats.misses() as f64;
    let measured_gap =
        (without.avg_request_us - with.avg_request_us) * with.stats.accesses() as f64;
    let expected_gap = misses * GmmEngineModel::paper_k256().latency_us();
    assert!(
        (measured_gap - expected_gap).abs() < expected_gap * 0.12 + 1.0,
        "total gap {measured_gap:.0} µs vs expected {expected_gap:.0} µs"
    );
}

#[test]
fn fixed_point_and_f64_policies_agree_on_outcome() {
    let trace = WorkloadKind::Dlrm.default_workload().generate(80_000, 33);
    let mut f64_sys = Icgmm::new(test_config()).expect("valid config");
    f64_sys.fit(&trace).expect("training succeeds");
    let mut fx_sys = Icgmm::new(IcgmmConfig {
        fixed_point_inference: true,
        ..test_config()
    })
    .expect("valid config");
    fx_sys.fit(&trace).expect("training succeeds");

    let a = f64_sys
        .run(&trace, PolicyMode::GmmCachingEviction)
        .expect("f64 run");
    let b = fx_sys
        .run(&trace, PolicyMode::GmmCachingEviction)
        .expect("fixed run");
    assert!(
        (a.miss_rate_pct() - b.miss_rate_pct()).abs() < 1.0,
        "f64 {:.2}% vs fixed {:.2}%",
        a.miss_rate_pct(),
        b.miss_rate_pct()
    );
}
