//! Property-based tests (proptest) over the core invariants of the
//! reproduction: cache coherence of the tag store, GMM distribution
//! axioms, Algorithm 1 bounds, fixed-point fidelity and policy sanity.

use icgmm_cache::{
    simulate, AccessOutcome, AlwaysAdmit, CacheConfig, FifoPolicy, GmmScorePolicy, LatencyModel,
    LfuPolicy, LruPolicy, SetAssocCache, ThresholdAdmit,
};
use icgmm_gmm::fixed::{ExpLut, Fixed, FixedGmm};
use icgmm_gmm::{EmConfig, EmTrainer, Gaussian2, Gmm, GmmScorer, Mat2, StandardScaler};
use icgmm_trace::{Op, PageIndex, TimestampTransformer, TraceRecord};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomized mixture for the scorer-fidelity properties: means spread
/// over the feature space, log-uniform covariance scales down to
/// near-singular (variances ~1e-6, correlation up to ±0.999), and — when
/// K allows — one zero-weight component.
fn random_mixture(k: usize, seed: u64) -> Gmm {
    let mut rng = StdRng::seed_from_u64(seed);
    let comps: Vec<Gaussian2> = (0..k)
        .map(|_| {
            let sx = 10f64.powf(rng.gen_range(-6.0..0.6));
            let sy = 10f64.powf(rng.gen_range(-6.0..0.6));
            let rho = rng.gen_range(-0.999..0.999);
            let cov = Mat2::new(sx, rho * (sx * sy).sqrt(), sy);
            Gaussian2::new(
                [rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0)],
                cov,
            )
            .expect("positive-definite by construction")
        })
        .collect();
    let mut weights: Vec<f64> = (0..k).map(|_| rng.gen_range(0.001..1.0)).collect();
    if k > 1 {
        weights[k / 2] = 0.0;
    }
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    Gmm::new(weights, comps).expect("valid mixture")
}

/// The seed's original scalar scoring path — per-call `Vec`, per-component
/// `ln π_k`, array-of-structs walk — as the independent numerical
/// reference for the SoA kernel.
fn reference_log_density(gmm: &Gmm, x: [f64; 2]) -> f64 {
    let logs: Vec<f64> = gmm
        .weights()
        .iter()
        .zip(gmm.components())
        .map(|(w, c)| {
            if *w == 0.0 {
                f64::NEG_INFINITY
            } else {
                w.ln() + c.log_pdf(x)
            }
        })
        .collect();
    let m = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = logs.iter().map(|v| (v - m).exp()).sum();
    m + s.ln()
}

fn small_cfg() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 32 * 4096,
        block_bytes: 4096,
        ways: 4,
    }
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (0u64..64, any::<bool>(), 0u64..4096).prop_map(|(page, write, off)| {
        let addr = (page << 12) + (off & !63);
        if write {
            TraceRecord::write(addr)
        } else {
            TraceRecord::read(addr)
        }
    })
}

proptest! {
    /// The tag store never holds the same page twice, never exceeds its
    /// associativity, and a just-inserted page is immediately findable.
    #[test]
    fn cache_tag_store_invariants(records in prop::collection::vec(arb_record(), 1..600)) {
        let cfg = small_cfg();
        let mut cache = SetAssocCache::new(cfg).unwrap();
        let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let mut admit = AlwaysAdmit;
        for (i, r) in records.iter().enumerate() {
            let out = cache.access(r, i as u64, None, &mut admit, &mut lru);
            match out {
                AccessOutcome::Hit { way } => prop_assert!(way < cfg.ways),
                AccessOutcome::MissInserted { way, .. } => {
                    prop_assert!(way < cfg.ways);
                    prop_assert!(cache.contains(r.page()), "inserted page not findable");
                }
                AccessOutcome::MissBypassed => unreachable!("AlwaysAdmit never bypasses"),
            }
            // No duplicate tags within any set.
            for set in 0..cfg.num_sets() {
                let mut tags = vec![];
                for way in 0..cfg.ways {
                    let b = cache.block(set, way);
                    if b.valid {
                        tags.push(b.tag);
                    }
                }
                let mut dedup = tags.clone();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), tags.len(), "duplicate tag in set {}", set);
            }
            prop_assert!(cache.occupancy() <= cfg.num_blocks());
        }
    }

    /// Bypassed misses leave the cache bit-for-bit untouched.
    #[test]
    fn bypass_never_mutates_state(records in prop::collection::vec(arb_record(), 1..300)) {
        let cfg = small_cfg();
        let mut cache = SetAssocCache::new(cfg).unwrap();
        let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
        // Threshold 1.0 with score 0.0 ⇒ every read miss bypasses.
        let mut admit = ThresholdAdmit { threshold: 1.0, admit_writes_always: false };
        for (i, r) in records.iter().enumerate() {
            let before = cache.occupancy();
            let out = cache.access(r, i as u64, Some(0.0), &mut admit, &mut lru);
            match out {
                AccessOutcome::MissBypassed => prop_assert_eq!(cache.occupancy(), before),
                AccessOutcome::Hit { .. } => {}
                AccessOutcome::MissInserted { .. } => {
                    prop_assert!(false, "nothing should be admitted at threshold 1.0");
                }
            }
        }
        prop_assert_eq!(cache.occupancy(), 0);
    }

    /// LRU evicts exactly the least-recently-touched page of a full set.
    #[test]
    fn lru_victim_is_least_recent(touch_order in proptest::sample::subsequence((0..16u64).collect::<Vec<_>>(), 4..12)) {
        // One-set cache: 4 ways over pages that all collide.
        let cfg = CacheConfig { capacity_bytes: 4 * 4096, block_bytes: 4096, ways: 4 };
        let mut cache = SetAssocCache::new(cfg).unwrap();
        let mut lru = LruPolicy::new(1, 4);
        let mut admit = AlwaysAdmit;
        let mut seq = 0u64;
        let mut touched: Vec<u64> = vec![];
        for &p in &touch_order {
            let r = TraceRecord::read(p << 12);
            cache.access(&r, seq, None, &mut admit, &mut lru);
            seq += 1;
            touched.retain(|&q| q != p);
            touched.push(p);
        }
        // Insert a brand-new page; if the set was full, the victim must be
        // the oldest touched page among the resident four.
        if touched.len() >= 4 {
            let resident: Vec<u64> = touched.iter().rev().take(4).copied().collect();
            let expected_victim = *resident.last().unwrap();
            let out = cache.access(&TraceRecord::read(99 << 12), seq, None, &mut admit, &mut lru);
            if let AccessOutcome::MissInserted { evicted: Some(e), .. } = out {
                prop_assert_eq!(e.page.raw(), expected_victim);
            } else {
                prop_assert!(false, "expected an eviction");
            }
        }
    }

    /// GMM axioms: weights sum to one; density is finite and non-negative;
    /// responsibilities form a distribution.
    #[test]
    fn gmm_distribution_axioms(
        seeds in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..12),
        x in (-100.0f64..100.0),
        y in (-100.0f64..100.0),
    ) {
        let k = seeds.len();
        let comps: Vec<Gaussian2> = seeds
            .iter()
            .map(|&(mx, my)| Gaussian2::new([mx, my], Mat2::new(1.0, 0.2, 2.0)).unwrap())
            .collect();
        let gmm = Gmm::new(vec![1.0 / k as f64; k], comps).unwrap();
        prop_assert!((gmm.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let d = gmm.density([x, y]);
        prop_assert!(d.is_finite() && d >= 0.0, "density {}", d);
        let resp = gmm.responsibilities([x, y]);
        prop_assert!((resp.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        prop_assert!(resp.iter().all(|r| (0.0..=1.0 + 1e-9).contains(r)));
    }

    /// EM never decreases the training log-likelihood (up to re-seeding
    /// noise, which the tolerance absorbs).
    #[test]
    fn em_loglik_monotone(points in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 30..120)) {
        let xs: Vec<[f64; 2]> = points.iter().map(|&(a, b)| [a, b]).collect();
        let trainer = EmTrainer::new(EmConfig {
            k: 3,
            max_iters: 12,
            tol: 1e-12,
            ..Default::default()
        })
        .unwrap();
        let (_, report) = trainer.fit(&xs, &[]).unwrap();
        for w in report.log_likelihood.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6, "loglik fell: {} -> {}", w[0], w[1]);
        }
    }

    /// Algorithm 1: timestamps always lie in [0, len_access_shot) and are
    /// piecewise constant over windows.
    #[test]
    fn algorithm1_bounds(
        len_window in 1u32..64,
        len_shot in 1u32..64,
        n in 1usize..2000,
    ) {
        let mut t = TimestampTransformer::new(len_window, len_shot);
        let mut last = None;
        for i in 0..n {
            let ts = t.next();
            prop_assert!(ts < u64::from(len_shot), "ts {} out of range", ts);
            if let Some((prev_i, prev_ts)) = last {
                let _: usize = prev_i;
                // Within one window the timestamp cannot change.
                if i / (len_window as usize) == prev_i / (len_window as usize) {
                    prop_assert_eq!(ts, prev_ts);
                }
            }
            last = Some((i, ts));
        }
    }

    /// Fixed-point arithmetic round-trips within quantization error and
    /// multiplication matches f64 within tolerance.
    #[test]
    fn fixed_point_accuracy(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
        let fa = Fixed::from_f64(a);
        let fb = Fixed::from_f64(b);
        prop_assert!((fa.to_f64() - a).abs() < 1e-6);
        let prod = fa.mul(fb).to_f64();
        let tol = (a * b).abs() * 1e-6 + 1e-4;
        prop_assert!((prod - a * b).abs() < tol, "{} * {} = {} (got {})", a, b, a * b, prod);
    }

    /// The LUT exp agrees with f64 exp over its domain.
    #[test]
    fn exp_lut_tracks_exp(x in -30.0f64..0.0) {
        let lut = ExpLut::new();
        let got = lut.eval(Fixed::from_f64(x)).to_f64();
        let want = x.exp();
        prop_assert!((got - want).abs() < want * 2e-3 + 1e-6, "exp({}) {} vs {}", x, got, want);
    }

    /// Quantized scores preserve the ordering of well-separated f64 scores
    /// (all the cache policy needs from the datapath).
    #[test]
    fn fixed_gmm_preserves_ordering(
        hot in -3.0f64..3.0,
        cold_offset in 6.0f64..30.0,
    ) {
        let gmm = Gmm::new(
            vec![1.0],
            vec![Gaussian2::new([0.0, 0.0], Mat2::scaled_identity(1.0)).unwrap()],
        )
        .unwrap();
        let fx = FixedGmm::from_gmm(&gmm).unwrap();
        let near = [hot * 0.3, hot * 0.3];
        let far = [hot * 0.3 + cold_offset, hot * 0.3];
        prop_assert!(fx.score(near) > fx.score(far));
    }

    /// The scaler inverse-transform is a true inverse.
    #[test]
    fn scaler_roundtrip(points in prop::collection::vec((-1e6f64..1e6, -1e4f64..1e4), 2..40)) {
        let xs: Vec<[f64; 2]> = points.iter().map(|&(a, b)| [a, b]).collect();
        let s = StandardScaler::fit(&xs, &[]);
        for x in &xs {
            let back = s.inverse_transform(s.transform(*x));
            prop_assert!((back[0] - x[0]).abs() < 1e-6 * x[0].abs().max(1.0));
            prop_assert!((back[1] - x[1]).abs() < 1e-6 * x[1].abs().max(1.0));
        }
    }

    /// Simulation accounting: hits + insertions + bypasses == accesses, and
    /// the latency model never reports less than the hit time per request.
    #[test]
    fn simulation_accounting_is_conserved(records in prop::collection::vec(arb_record(), 1..500)) {
        let cfg = small_cfg();
        let mut cache = SetAssocCache::new(cfg).unwrap();
        let mut ev = LfuPolicy::new(cfg.num_sets(), cfg.ways);
        let mut admit = AlwaysAdmit;
        let report = simulate(
            &records,
            &mut cache,
            &mut admit,
            &mut ev,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        let s = &report.stats;
        prop_assert_eq!(
            s.hits() + s.read_insertions + s.write_insertions + s.bypasses(),
            s.accesses()
        );
        prop_assert_eq!(s.accesses() as usize, records.len());
        prop_assert!(report.avg_us >= 1.0);
        // Occupancy equals insertions minus evictions.
        let evictions = s.clean_evictions + s.dirty_evictions;
        prop_assert_eq!(
            cache.occupancy() as u64,
            s.read_insertions + s.write_insertions - evictions
        );
    }

    /// FIFO and GMM-score policies always return in-range victims and never
    /// corrupt the cache across random traces.
    #[test]
    fn alternative_policies_stay_coherent(records in prop::collection::vec(arb_record(), 1..400)) {
        let cfg = small_cfg();
        for which in 0..2 {
            let mut cache = SetAssocCache::new(cfg).unwrap();
            let mut admit = AlwaysAdmit;
            let report = match which {
                0 => {
                    let mut ev = FifoPolicy::new(cfg.num_sets(), cfg.ways);
                    simulate(&records, &mut cache, &mut admit, &mut ev, None, &LatencyModel::paper_tlc(), None)
                }
                _ => {
                    let mut ev = GmmScorePolicy::new(cfg.num_sets(), cfg.ways);
                    simulate(&records, &mut cache, &mut admit, &mut ev, None, &LatencyModel::paper_tlc(), None)
                }
            };
            prop_assert_eq!(report.stats.accesses() as usize, records.len());
            // Every distinct page that was accessed at least... the last
            // accessed page must be resident (it was just touched/inserted).
            let last = records.last().unwrap().page();
            prop_assert!(cache.contains(last), "last page evicted immediately");
        }
    }

    /// The SoA batch kernel matches the scalar path bit-for-bit and the
    /// seed's original implementation to ≤1e-12 relative error, across
    /// K ∈ {1, 3, 256}, near-singular covariances and zero-weight
    /// components.
    #[test]
    fn score_batch_matches_scalar_density(
        k_idx in 0usize..3,
        seed in any::<u64>(),
        points in prop::collection::vec((-40.0f64..40.0, -40.0f64..40.0), 1..40),
    ) {
        let k = [1usize, 3, 256][k_idx];
        let gmm = random_mixture(k, seed);
        let scorer = GmmScorer::from_gmm(&gmm);
        let xs: Vec<[f64; 2]> = points.iter().map(|&(a, b)| [a, b]).collect();
        let mut batch = vec![0.0; xs.len()];
        scorer.score_batch(&xs, &mut batch);
        let mut parallel = vec![0.0; xs.len()];
        scorer.score_batch_parallel(&xs, &mut parallel, 2);
        for (i, x) in xs.iter().enumerate() {
            // Batched == scalar == parallel, bit-for-bit.
            let scalar = gmm.density(*x);
            prop_assert_eq!(batch[i].to_bits(), scalar.to_bits(),
                "batch vs scalar at {:?}", x);
            prop_assert_eq!(parallel[i].to_bits(), batch[i].to_bits(),
                "parallel vs batch at {:?}", x);
            // Fidelity against the seed implementation, in the log domain
            // (|Δ ln G| bounds the relative density error).
            let want = reference_log_density(&gmm, *x);
            let got = scorer.log_density(*x);
            if want < -700.0 {
                // The reference underflows to (sub)denormal density; the
                // kernel must agree the point is impossibly cold.
                prop_assert!(got < -690.0, "got {} want {}", got, want);
            } else {
                let tol = 1e-12 * want.abs().max(1.0);
                prop_assert!((got - want).abs() <= tol,
                    "K={} x={:?}: got {} want {} (diff {:e})",
                    k, x, got, want, (got - want).abs());
            }
        }
    }

    /// The fixed-point hardware mirror stays in lock-step with the batched
    /// f64 path: batched fixed == scalar fixed bit-for-bit, and within the
    /// established quantization envelope of the f64 kernel.
    #[test]
    fn batched_path_agrees_with_hardware_mirror(
        seed in any::<u64>(),
        points in prop::collection::vec((-8.0f64..8.0, -8.0f64..8.0), 1..30),
    ) {
        // Moderate covariances: the quantized datapath's documented domain.
        let mut rng = StdRng::seed_from_u64(seed);
        let comps: Vec<Gaussian2> = (0..8)
            .map(|_| {
                let sx = rng.gen_range(0.3..2.0);
                let sy = rng.gen_range(0.3..2.0);
                let rho = rng.gen_range(-0.5..0.5);
                Gaussian2::new(
                    [rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0)],
                    Mat2::new(sx, rho * (sx * sy).sqrt(), sy),
                )
                .unwrap()
            })
            .collect();
        let gmm = Gmm::new(vec![0.125; 8], comps).unwrap();
        let fx = FixedGmm::from_gmm(&gmm).unwrap();
        let scorer = GmmScorer::from_gmm(&gmm);
        let xs: Vec<[f64; 2]> = points.iter().map(|&(a, b)| [a, b]).collect();
        let mut f64_batch = vec![0.0; xs.len()];
        let mut fx_batch = vec![0.0; xs.len()];
        scorer.score_batch(&xs, &mut f64_batch);
        fx.score_batch(&xs, &mut fx_batch);
        for (i, x) in xs.iter().enumerate() {
            prop_assert_eq!(fx_batch[i].to_bits(), fx.score(*x).to_bits());
            let f = f64_batch[i];
            let q = fx_batch[i];
            prop_assert!(
                (f - q).abs() < f.max(1e-6) * 0.02 + 1e-6,
                "at {:?}: f64 {} vs fixed {}", x, f, q
            );
        }
    }

    /// Write-backs only ever follow write activity: a read-only trace can
    /// never produce dirty evictions.
    #[test]
    fn read_only_traces_never_write_back(pages in prop::collection::vec(0u64..128, 1..500)) {
        let records: Vec<TraceRecord> =
            pages.iter().map(|&p| TraceRecord::read(p << 12)).collect();
        let cfg = small_cfg();
        let mut cache = SetAssocCache::new(cfg).unwrap();
        let mut ev = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let report = simulate(
            &records,
            &mut cache,
            &mut AlwaysAdmit,
            &mut ev,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        prop_assert_eq!(report.stats.dirty_evictions, 0);
        prop_assert_eq!(report.stats.writes, 0);
    }
}

#[test]
fn page_index_is_stable_across_ops() {
    // Deterministic companion to the proptest suite: Op does not affect
    // page derivation.
    let a = TraceRecord::new(Op::Read, 0xABCDE);
    let b = TraceRecord::new(Op::Write, 0xABCDE);
    assert_eq!(a.page(), b.page());
    assert_eq!(a.page(), PageIndex::from_paddr(0xABCDE));
}
