//! Cross-crate integration tests: the full trace → train → simulate
//! pipeline, exercised the way the benchmark harness uses it.

use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_cache::CacheConfig;
use icgmm_gmm::EmConfig;
use icgmm_trace::synth::{StreamWorkload, Workload, WorkloadKind};
use icgmm_trace::PreprocessConfig;

/// Small-but-real configuration: trains in a couple of seconds in debug.
fn test_config() -> IcgmmConfig {
    IcgmmConfig {
        em: EmConfig {
            k: 16,
            max_iters: 25,
            ..Default::default()
        },
        max_train_cells: 15_000,
        ..IcgmmConfig::default()
    }
}

#[test]
fn gmm_beats_lru_on_dlrm_like_skew() {
    // dlrm is the paper's biggest win (36.78% → 30.64%); at reduced scale
    // the gap persists. K must be large enough to resolve 8 embedding
    // tables (a few components per table).
    let trace = WorkloadKind::Dlrm.default_workload().generate(200_000, 21);
    let mut sys = Icgmm::new(IcgmmConfig {
        em: EmConfig {
            k: 48,
            max_iters: 30,
            ..Default::default()
        },
        max_train_cells: 30_000,
        threshold: icgmm_gmm::ThresholdConfig { quantile: 0.35 },
        ..IcgmmConfig::default()
    })
    .expect("valid config");
    sys.fit(&trace).expect("training succeeds");
    let lru = sys.run(&trace, PolicyMode::Lru).expect("lru runs");
    let gmm = sys
        .run(&trace, PolicyMode::GmmEvictionOnly)
        .expect("gmm runs");
    assert!(
        gmm.miss_rate_pct() < lru.miss_rate_pct(),
        "gmm {:.2}% !< lru {:.2}%",
        gmm.miss_rate_pct(),
        lru.miss_rate_pct()
    );
    // Latency tracks the miss-rate win; allow a small write-back margin at
    // this reduced scale (the full-scale Table 1 run shows a clear win).
    assert!(
        gmm.avg_us() < lru.avg_us() * 1.05,
        "gmm {:.2} µs vs lru {:.2} µs",
        gmm.avg_us(),
        lru.avg_us()
    );
}

#[test]
fn gmm_eviction_tracks_lru_on_a_stream() {
    // At full scale score-eviction beats LRU on stream (pinning the hot
    // region); at this reduced scale we assert the weaker invariant that
    // it never does materially worse.
    let workload = StreamWorkload::default();
    let trace = workload.generate(200_000, 22);
    let mut sys = Icgmm::new(IcgmmConfig {
        em: EmConfig {
            k: 48,
            max_iters: 30,
            ..Default::default()
        },
        max_train_cells: 30_000,
        threshold: icgmm_gmm::ThresholdConfig { quantile: 0.02 },
        ..IcgmmConfig::default()
    })
    .expect("valid config");
    sys.fit(&trace).expect("training succeeds");
    let lru = sys.run(&trace, PolicyMode::Lru).expect("lru runs");
    let gmm = sys
        .run(&trace, PolicyMode::GmmEvictionOnly)
        .expect("gmm runs");
    // 200k requests cover barely one kernel sweep, so the cyclic reuse the
    // policy exploits at full scale is mostly absent here; assert the
    // no-catastrophe invariant (the fig6 harness shows the full-scale win).
    assert!(
        gmm.miss_rate_pct() <= lru.miss_rate_pct() + 1.0,
        "gmm {:.2}% vs lru {:.2}%",
        gmm.miss_rate_pct(),
        lru.miss_rate_pct()
    );
}

#[test]
fn all_seven_workloads_run_every_fig6_mode() {
    for kind in WorkloadKind::all() {
        let trace = kind.default_workload().generate(30_000, 5);
        let mut sys = Icgmm::new(IcgmmConfig {
            em: EmConfig {
                k: 8,
                max_iters: 10,
                ..Default::default()
            },
            max_train_cells: 4_000,
            ..IcgmmConfig::default()
        })
        .expect("valid config");
        sys.fit(&trace).expect("training succeeds");
        for mode in PolicyMode::fig6_modes() {
            let run = sys.run(&trace, mode).unwrap_or_else(|e| {
                panic!("{kind}/{mode} failed: {e}");
            });
            assert!(run.sim.stats.accesses() > 0, "{kind}/{mode} ran nothing");
            assert!(
                run.miss_rate_pct() <= 100.0 && run.miss_rate_pct() >= 0.0,
                "{kind}/{mode} nonsense miss rate"
            );
            assert!(run.avg_us() >= 1.0, "{kind}/{mode} below hit latency");
        }
    }
}

#[test]
fn training_is_deterministic_given_seeds() {
    let trace = WorkloadKind::Memtier.default_workload().generate(40_000, 8);
    let mk = || {
        let mut sys = Icgmm::new(test_config()).expect("valid config");
        sys.fit(&trace).expect("training succeeds");
        let run = sys
            .run(&trace, PolicyMode::GmmCachingEviction)
            .expect("run succeeds");
        (
            sys.model().expect("trained").threshold,
            run.miss_rate_pct(),
            run.sim.stats,
        )
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.0, b.0, "thresholds differ across identical fits");
    assert_eq!(a.1, b.1, "miss rates differ across identical fits");
    assert_eq!(a.2, b.2, "stats differ across identical fits");
}

#[test]
fn trained_model_transfers_between_systems() {
    // A model trained in one system can be installed in another (the
    // "one-time loading from HBM" deployment story).
    let trace = WorkloadKind::Sysbench
        .default_workload()
        .generate(40_000, 9);
    let mut trainer = Icgmm::new(test_config()).expect("valid config");
    trainer.fit(&trace).expect("training succeeds");
    let model = trainer.model().expect("trained").clone();

    let mut deployed = Icgmm::new(test_config()).expect("valid config");
    deployed.set_model(model);
    let run = deployed
        .run(&trace, PolicyMode::GmmCachingEviction)
        .expect("deployed model runs");
    let original = trainer
        .run(&trace, PolicyMode::GmmCachingEviction)
        .expect("original runs");
    assert_eq!(run.sim.stats, original.sim.stats);
}

#[test]
fn smaller_cache_monotonically_hurts_lru() {
    let trace = WorkloadKind::Memtier
        .default_workload()
        .generate(60_000, 10);
    let run_with_capacity = |mib: u64| {
        let cfg = IcgmmConfig {
            cache: CacheConfig {
                capacity_bytes: mib * 1024 * 1024,
                ..CacheConfig::paper_default()
            },
            ..test_config()
        };
        let sys = Icgmm::new(cfg).expect("valid config");
        sys.run(&trace, PolicyMode::Lru)
            .expect("run succeeds")
            .miss_rate_pct()
    };
    let big = run_with_capacity(64);
    let small = run_with_capacity(4);
    assert!(
        small >= big,
        "4 MiB cache misses ({small:.2}%) must be >= 64 MiB ({big:.2}%)"
    );
}

#[test]
fn preprocessing_respects_paper_defaults_end_to_end() {
    let cfg = IcgmmConfig::default();
    assert_eq!(cfg.preprocess, PreprocessConfig::default());
    let trace = WorkloadKind::Parsec.default_workload().generate(10_000, 1);
    let sys = Icgmm::new(test_config()).expect("valid config");
    // 20% warm-up + 10% tail trimmed ⇒ 70% measured.
    let run = sys.run(&trace, PolicyMode::Lru).expect("run succeeds");
    assert_eq!(run.sim.stats.accesses(), 7_000);
}
