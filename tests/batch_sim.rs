//! Integration tests: the speculative miss-window batcher driven by the
//! *real* trained policy engine (f64 and fixed-point datapaths) is
//! bit-identical to the streaming simulator, and the end-to-end system
//! rides it by default.

use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_cache::{
    simulate_streaming_with_warmup, AlwaysAdmit, CacheConfig, GmmScorePolicy, LatencyModel,
    ScoreSource, SetAssocCache, ThresholdAdmit, WindowedSimulator,
};
use icgmm_gmm::EmConfig;
use icgmm_testutil::{conflict_trace, hand_engine};
use icgmm_trace::synth::WorkloadKind;
use icgmm_trace::{PreprocessConfig, TraceRecord};

#[test]
fn gmm_engine_batched_replay_is_bit_identical_both_datapaths() {
    let cfg = CacheConfig {
        capacity_bytes: 64 * 4096,
        block_bytes: 4096,
        ways: 8,
    };
    let lat = LatencyModel::paper_tlc();
    let trace = conflict_trace(8_000, 160, 21);
    let (warm, meas) = trace.split_at(1_600);

    for fixed in [false, true] {
        let mut c1 = SetAssocCache::new(cfg).unwrap();
        let mut ev1 = GmmScorePolicy::new(cfg.num_sets(), cfg.ways);
        let mut ad1 = ThresholdAdmit::new(-6.0);
        let mut e1 = hand_engine(24, fixed);
        let streaming = simulate_streaming_with_warmup(
            warm,
            meas,
            &mut c1,
            &mut ad1,
            &mut ev1,
            Some(&mut e1 as &mut dyn ScoreSource),
            &lat,
            Some(256),
        );

        let mut c2 = SetAssocCache::new(cfg).unwrap();
        let mut ev2 = GmmScorePolicy::new(cfg.num_sets(), cfg.ways);
        let mut ad2 = ThresholdAdmit::new(-6.0);
        let mut e2 = hand_engine(24, fixed);
        let mut wsim = WindowedSimulator::new(512);
        let batched = wsim.run(
            warm,
            meas,
            &mut c2,
            &mut ad2,
            &mut ev2,
            Some(&mut e2 as &mut dyn ScoreSource),
            &lat,
            Some(256),
        );

        assert_eq!(streaming, batched, "fixed_point={fixed}");
        let spec = wsim.spec_stats();
        assert!(spec.batched_scores > 0, "fixed_point={fixed}: {spec:?}");
        // The Algorithm 1 clock advanced identically on both engines: the
        // next observation scores bit-equal.
        let probe = TraceRecord::read(99 << 12);
        e1.observe(&probe);
        e2.observe(&probe);
        assert_eq!(
            e1.score_current().to_bits(),
            e2.score_current().to_bits(),
            "fixed_point={fixed}"
        );
    }
}

#[test]
fn gmm_eviction_only_mode_speculates_without_victim_divergence() {
    // The paper's GmmEvictionOnly mode: always-admit + stored-score
    // eviction, driven by the real policy engine. With no admission
    // bypasses there are no phantoms, so the policy-aware shadow must
    // predict every stored-score victim exactly — zero divergence of any
    // kind across the whole replay, at full batching.
    let cfg = CacheConfig {
        capacity_bytes: 64 * 4096,
        block_bytes: 4096,
        ways: 8,
    };
    let lat = LatencyModel::paper_tlc();
    let trace = conflict_trace(8_000, 160, 33);
    let (warm, meas) = trace.split_at(1_600);

    for fixed in [false, true] {
        let mut c1 = SetAssocCache::new(cfg).unwrap();
        let mut ev1 = GmmScorePolicy::new(cfg.num_sets(), cfg.ways);
        let mut e1 = hand_engine(24, fixed);
        let streaming = simulate_streaming_with_warmup(
            warm,
            meas,
            &mut c1,
            &mut AlwaysAdmit,
            &mut ev1,
            Some(&mut e1 as &mut dyn ScoreSource),
            &lat,
            None,
        );

        let mut c2 = SetAssocCache::new(cfg).unwrap();
        let mut ev2 = GmmScorePolicy::new(cfg.num_sets(), cfg.ways);
        let mut e2 = hand_engine(24, fixed);
        let mut wsim = WindowedSimulator::new(1024);
        let batched = wsim.run(
            warm,
            meas,
            &mut c2,
            &mut AlwaysAdmit,
            &mut ev2,
            Some(&mut e2 as &mut dyn ScoreSource),
            &lat,
            None,
        );

        assert_eq!(streaming, batched, "fixed_point={fixed}");
        let spec = wsim.spec_stats();
        assert_eq!(spec.divergences(), 0, "fixed_point={fixed}: {spec:?}");
        assert_eq!(spec.victim_divergences, 0, "fixed_point={fixed}: {spec:?}");
        assert!(spec.batched_scores > 0, "fixed_point={fixed}: {spec:?}");
    }
}

#[test]
fn system_default_path_matches_explicit_streaming_replay() {
    // `Icgmm::run` (batched by default at paper-scale K) must agree with
    // a hand-driven streaming replay of the same trained model and
    // policies. K = 64 is the smallest component count at which the
    // engine prefers the batched path.
    let cfg = IcgmmConfig {
        cache: CacheConfig {
            capacity_bytes: 128 * 4096,
            block_bytes: 4096,
            ways: 8,
        },
        em: EmConfig {
            k: 64,
            max_iters: 8,
            ..Default::default()
        },
        preprocess: PreprocessConfig {
            len_window: 32,
            len_access_shot: 1_000,
            ..Default::default()
        },
        max_train_cells: 5_000,
        ..Default::default()
    };
    let trace = WorkloadKind::Memtier
        .default_workload()
        .generate(30_000, 17);
    let mut sys = Icgmm::new(cfg).unwrap();
    sys.fit(&trace).unwrap();
    let run = sys.run(&trace, PolicyMode::GmmCachingEviction).unwrap();

    // Hand-driven streaming reference with an identical engine stack.
    let (start, end) = cfg.preprocess.kept_range(trace.len());
    let (warm, meas) = (&trace.records()[..start], &trace.records()[start..end]);
    let mut cache = SetAssocCache::new(cfg.cache).unwrap();
    let mut ev = GmmScorePolicy::new(cfg.cache.num_sets(), cfg.cache.ways);
    let mut ad = ThresholdAdmit::new(sys.model().unwrap().threshold);
    let mut eng = sys.policy_engine().unwrap();
    let streaming = simulate_streaming_with_warmup(
        warm,
        meas,
        &mut cache,
        &mut ad,
        &mut ev,
        Some(&mut eng as &mut dyn ScoreSource),
        &cfg.latency,
        None,
    );
    assert_eq!(run.sim, streaming);
    let spec = run.spec.expect("gmm mode speculates");
    assert!(spec.batched_scores > 0, "{spec:?}");
}
