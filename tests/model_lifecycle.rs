//! Model lifecycle integration tests: save/load round-trips through the
//! text format, deployment into a fresh system, and the LSTM baseline
//! driving the same cache simulator as the GMM.

use icgmm::persist::{load_model, save_model};
use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_cache::{
    simulate, AlwaysAdmit, CacheConfig, GmmScorePolicy, LatencyModel, LruPolicy, SetAssocCache,
};
use icgmm_gmm::EmConfig;
use icgmm_lstm::{train, LstmArch, LstmNetwork, LstmScoreSource, TrainConfig, TrainExample};
use icgmm_trace::synth::WorkloadKind;
use icgmm_trace::TraceRecord;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_config() -> IcgmmConfig {
    IcgmmConfig {
        em: EmConfig {
            k: 12,
            max_iters: 20,
            ..Default::default()
        },
        max_train_cells: 8_000,
        ..IcgmmConfig::default()
    }
}

#[test]
fn saved_model_reproduces_simulation_exactly() {
    let trace = WorkloadKind::Memtier
        .default_workload()
        .generate(50_000, 41);
    let mut sys = Icgmm::new(test_config()).expect("valid config");
    sys.fit(&trace).expect("training succeeds");

    // Serialize to the text format and back.
    let mut buf = Vec::new();
    save_model(sys.model().expect("trained"), &mut buf).expect("save succeeds");
    let loaded = load_model(buf.as_slice()).expect("load succeeds");
    assert_eq!(&loaded, sys.model().expect("trained"));

    // A fresh system with the loaded model simulates identically.
    let mut deployed = Icgmm::new(test_config()).expect("valid config");
    deployed.set_model(loaded);
    let a = sys
        .run(&trace, PolicyMode::GmmCachingEviction)
        .expect("original run");
    let b = deployed
        .run(&trace, PolicyMode::GmmCachingEviction)
        .expect("deployed run");
    assert_eq!(a.sim.stats, b.sim.stats);
    assert_eq!(a.avg_us(), b.avg_us());
}

#[test]
fn model_file_is_humanly_inspectable() {
    let trace = WorkloadKind::Parsec.default_workload().generate(30_000, 42);
    let mut sys = Icgmm::new(test_config()).expect("valid config");
    sys.fit(&trace).expect("training succeeds");
    let mut buf = Vec::new();
    save_model(sys.model().expect("trained"), &mut buf).expect("save succeeds");
    let text = String::from_utf8(buf).expect("model file is UTF-8");
    assert!(text.starts_with("icgmm-model v1"));
    assert!(text.contains("threshold "));
    // One `comp` line per mixture component.
    let comps = text.lines().filter(|l| l.starts_with("comp ")).count();
    assert_eq!(comps, sys.model().expect("trained").gmm.k());
}

/// The LSTM baseline plugs into the same simulator through `ScoreSource` —
/// the structural requirement behind the paper's Table 2 comparison.
#[test]
fn lstm_score_source_drives_the_cache() {
    let arch = LstmArch {
        layers: 1,
        hidden: 8,
        input: 2,
        seq_len: 8,
    };
    let mut rng = StdRng::seed_from_u64(43);
    let mut net = LstmNetwork::new(arch, &mut rng);
    // Teach the tiny LSTM to emit higher scores after low-page histories.
    let data: Vec<TrainExample> = (0..40)
        .map(|i| {
            let hot = i % 2 == 0;
            TrainExample {
                seq: (0..arch.seq_len)
                    .map(|_| vec![if hot { -0.5 } else { 0.5 }, 0.0])
                    .collect(),
                target: if hot { 1.0 } else { 0.0 },
            }
        })
        .collect();
    train(
        &mut net,
        &data,
        &TrainConfig {
            epochs: 10,
            ..Default::default()
        },
    );

    let mut source = LstmScoreSource::new(net, 512.0, 512.0, 2, 100);
    let records: Vec<TraceRecord> = (0..2_000u64)
        .map(|i| TraceRecord::read(((i * 37) % 1024) << 12))
        .collect();
    let cfg = CacheConfig {
        capacity_bytes: 64 * 4096,
        block_bytes: 4096,
        ways: 4,
    };
    let mut cache = SetAssocCache::new(cfg).expect("geometry");
    let mut ev = GmmScorePolicy::new(cfg.num_sets(), cfg.ways);
    let report = simulate(
        &records,
        &mut cache,
        &mut AlwaysAdmit,
        &mut ev,
        Some(&mut source),
        &LatencyModel::paper_tlc(),
        None,
    );
    assert_eq!(report.stats.accesses(), 2_000);
    assert!(report.stats.hits() > 0, "LSTM-driven cache never hit");

    // Sanity: an LRU run over the same records is comparable in magnitude.
    let mut cache2 = SetAssocCache::new(cfg).expect("geometry");
    let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
    let baseline = simulate(
        &records,
        &mut cache2,
        &mut AlwaysAdmit,
        &mut lru,
        None,
        &LatencyModel::paper_tlc(),
        None,
    );
    assert!(report.stats.miss_rate() <= baseline.stats.miss_rate() + 0.5);
}
