//! Drive the cycle-approximate FPGA dataflow model directly: per-module
//! latencies, resource estimates, the fixed-point datapath, and the
//! overlap of GMM inference with SSD accesses (paper §4).
//!
//! Run with: `cargo run --release --example hardware_model`

use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_gmm::EmConfig;
use icgmm_hw::{
    table2, CacheEngineModel, DataflowConfig, GmmEngineModel, GmmResourceModel, SsdProfile,
};
use icgmm_trace::synth::WorkloadKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Module-level timing, straight from the calibrated models.
    let cache_engine = CacheEngineModel::paper_default();
    let gmm_engine = GmmEngineModel::paper_k256();
    let ssd = SsdProfile::tlc();
    println!(
        "cache hit        : {:?} = {:.2} µs",
        cache_engine.hit_cycles(),
        cache_engine.hit_us()
    );
    println!(
        "GMM inference    : {:?} = {:.2} µs (K={}, II={}, depth={})",
        gmm_engine.latency_cycles(),
        gmm_engine.latency_us(),
        gmm_engine.k,
        gmm_engine.ii,
        gmm_engine.pipeline_depth
    );
    println!(
        "SSD read/program : {} µs / {} µs ({})",
        ssd.read_us, ssd.write_us, ssd.name
    );

    let res = GmmResourceModel::paper_k256().estimate();
    println!(
        "\nGMM engine resources (modeled vs paper Table 2):\n  BRAM {} (paper {})  DSP {} (paper {})  LUT {} (paper {})  FF {} (paper {})",
        res.bram_36k,
        table2::GMM.bram_36k,
        res.dsp,
        table2::GMM.dsp,
        res.lut,
        table2::GMM.lut,
        res.ff,
        table2::GMM.ff
    );

    // End-to-end dataflow run with the fixed-point datapath.
    let trace = WorkloadKind::Stream.default_workload().generate(200_000, 4);
    let cfg = IcgmmConfig {
        em: EmConfig {
            k: 64,
            ..Default::default()
        },
        fixed_point_inference: true, // bit-faithful FPGA datapath
        ..IcgmmConfig::default()
    };
    let mut system = Icgmm::new(cfg)?;
    system.fit(&trace)?;

    for overlap in [true, false] {
        let report = system.run_dataflow(
            &trace,
            PolicyMode::GmmCachingEviction,
            &DataflowConfig {
                overlap_policy_with_ssd: overlap,
                ..Default::default()
            },
        )?;
        println!(
            "\ndataflow ({}):\n  avg request {:.2} µs | makespan {:.2} s | SSD util {:.2} | overlap saved {:.3} s | loader stalls {}",
            if overlap { "free-running, overlapped" } else { "sequential" },
            report.avg_request_us,
            report.makespan_us / 1e6,
            report.ssd_utilization(),
            report.overlap_saved_us / 1e6,
            report.loader_stalls
        );
    }
    println!("\nThe overlapped design hides the full 3 µs inference behind every");
    println!("SSD access — the sequential design pays it on every miss.");
    Ok(())
}
