//! Online adaptive retraining (extension beyond the paper): refit the GMM
//! on a sliding window during the run and compare against the paper's
//! frozen offline model on a workload with phase drift.
//!
//! Run with: `cargo run --release --example adaptive_retraining`

use icgmm::adaptive::{run_adaptive, AdaptiveConfig};
use icgmm::report::{f, format_table};
use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_gmm::EmConfig;
use icgmm_trace::synth::{MemtierWorkload, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Memtier with slow popularity rotation: the hot key range jumps every
    // 130k requests, so a deployment-time model goes stale over the run.
    let workload = MemtierWorkload {
        phase_len: 130_000,
        rotate_keys: 120_000,
        ..MemtierWorkload::default()
    };
    let trace = workload.generate(400_000, 17);

    let cfg = IcgmmConfig {
        em: EmConfig {
            k: 48,
            ..Default::default()
        },
        threshold: icgmm_gmm::ThresholdConfig { quantile: 0.015 },
        max_train_cells: 40_000,
        ..IcgmmConfig::default()
    };

    // Realistic deployment: the model is frozen at deployment time — it has
    // only seen the first phases of the workload.
    let deploy_prefix: icgmm_trace::Trace = trace.records()[..140_000].iter().copied().collect();
    let mut deployed = Icgmm::new(cfg)?;
    deployed.fit(&deploy_prefix)?;

    // Oracle: trained on the *whole* trace — with the timestamp feature it
    // effectively knows the rotation schedule in advance (train == test).
    let mut oracle = Icgmm::new(cfg)?;
    oracle.fit(&trace)?;

    let lru = deployed.run(&trace, PolicyMode::Lru)?;
    let frozen = deployed.run(&trace, PolicyMode::GmmEvictionOnly)?;
    let oracle_run = oracle.run(&trace, PolicyMode::GmmEvictionOnly)?;
    let adaptive = run_adaptive(
        &deployed,
        &trace,
        PolicyMode::GmmEvictionOnly,
        &AdaptiveConfig {
            refit_every: 30_000,
            window: 60_000,
            refit_max_iters: 20,
        },
    )?;

    println!(
        "{}",
        format_table(
            &["policy", "miss %", "avg µs", "refits"],
            &[
                vec![
                    "lru".into(),
                    f(lru.miss_rate_pct(), 2),
                    f(lru.avg_us(), 2),
                    "-".into()
                ],
                vec![
                    "gmm (frozen at deploy)".into(),
                    f(frozen.miss_rate_pct(), 2),
                    f(frozen.avg_us(), 2),
                    "0".into(),
                ],
                vec![
                    "gmm (adaptive)".into(),
                    f(adaptive.miss_rate_pct(), 2),
                    f(adaptive.avg_us, 2),
                    adaptive.refits.to_string(),
                ],
                vec![
                    "gmm (oracle, full trace)".into(),
                    f(oracle_run.miss_rate_pct(), 2),
                    f(oracle_run.avg_us(), 2),
                    "0".into(),
                ],
            ],
        )
    );
    println!(
        "per-chunk miss rates (adaptive): {}",
        adaptive
            .chunk_miss_rates
            .iter()
            .map(|r| format!("{:.2}%", r * 100.0))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("Finding: refits recover the full-trace oracle's performance from a");
    println!("deployment-time model (watch avg latency: frozen pays for stale pinned");
    println!("pages). When drift outpaces the refit cadence, recency (LRU) remains");
    println!("competitive — retraining cadence is a real deployment knob the paper's");
    println!("offline-only training leaves open.");
    Ok(())
}
