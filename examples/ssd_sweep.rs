//! Sensitivity study: how much of the GMM's latency win survives on
//! faster/slower storage? Sweeps the SSD device class (Z-NAND → TLC → QLC)
//! on one benchmark, using the same trained model.
//!
//! Run with: `cargo run --release --example ssd_sweep`

use icgmm::report::{f, format_table};
use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_cache::LatencyModel;
use icgmm_gmm::EmConfig;
use icgmm_trace::synth::WorkloadKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = WorkloadKind::Dlrm.default_workload().generate(300_000, 9);
    let cfg = IcgmmConfig {
        em: EmConfig {
            k: 64,
            ..Default::default()
        },
        threshold: icgmm_gmm::ThresholdConfig { quantile: 0.35 },
        ..IcgmmConfig::default()
    };
    let mut system = Icgmm::new(cfg)?;
    system.fit(&trace)?;

    let devices = [
        ("z-nand (10/100 µs)", LatencyModel::low_latency_ssd()),
        ("tlc (75/900 µs, paper)", LatencyModel::paper_tlc()),
        ("qlc (150/2200 µs)", LatencyModel::qlc_ssd()),
    ];
    let mut rows = Vec::new();
    for (name, lat) in devices {
        let lru = system.run_with_latency(&trace, PolicyMode::Lru, &lat)?;
        let gmm = system.run_with_latency(&trace, PolicyMode::GmmEvictionOnly, &lat)?;
        rows.push(vec![
            name.to_string(),
            f(lru.avg_us(), 2),
            f(gmm.avg_us(), 2),
            f((1.0 - gmm.avg_us() / lru.avg_us()) * 100.0, 2),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["device", "lru avg µs", "gmm avg µs", "reduction %"],
            &rows
        )
    );
    println!("The slower the device, the more each avoided miss is worth — the");
    println!("reduction percentage is roughly device-independent (it tracks the");
    println!("miss-rate cut), but the absolute µs saved grows with SSD latency.");
    Ok(())
}
