//! Compare all eight eviction/admission policies — the paper's four modes
//! plus FIFO/Random/LFU baselines and the Belady upper bound — on a
//! scan-heavy workload where replacement policy actually matters.
//!
//! Run with: `cargo run --release --example policy_comparison`

use icgmm::report::{f, format_table};
use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_gmm::EmConfig;
use icgmm_trace::synth::{StreamWorkload, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // STREAM-like: cyclic sweeps (LRU-hostile) plus a hot control region.
    let workload = StreamWorkload::default();
    let trace = workload.generate(400_000, 7);

    let cfg = IcgmmConfig {
        em: EmConfig {
            k: 64,
            ..Default::default()
        },
        ..IcgmmConfig::default()
    };
    let mut system = Icgmm::new(cfg)?;
    system.fit(&trace)?;

    let modes = [
        PolicyMode::Random,
        PolicyMode::Fifo,
        PolicyMode::Lru,
        PolicyMode::Lfu,
        PolicyMode::GmmCachingOnly,
        PolicyMode::GmmEvictionOnly,
        PolicyMode::GmmCachingEviction,
        PolicyMode::Belady,
    ];
    let mut rows = Vec::new();
    for mode in modes {
        let run = system.run(&trace, mode)?;
        rows.push(vec![
            mode.to_string(),
            f(run.miss_rate_pct(), 2),
            f(run.avg_us(), 2),
            run.sim.stats.bypasses().to_string(),
            run.gmm_inferences.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["policy", "miss %", "avg µs", "bypasses", "gmm inferences"],
            &rows
        )
    );
    println!("Belady is the offline optimum: no online policy can beat it.");
    println!("The GMM modes should sit between LRU and Belady on this workload.");
    Ok(())
}
