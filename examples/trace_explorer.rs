//! Explore the statistical structure of the seven paper workloads — the
//! Fig. 2-style spatial/temporal views plus the numbers behind them.
//!
//! Run with: `cargo run --release --example trace_explorer [workload]`
//! (default: dlrm; try `parsec`, `stream`, `hashmap`, ...)

use icgmm_trace::histogram::{working_set_series, SpatialHistogram, TemporalHeatmap};
use icgmm_trace::synth::WorkloadKind;
use icgmm_trace::PreprocessConfig;
use std::str::FromStr;

fn sparkline(counts: &[u64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    counts
        .iter()
        .map(|&c| GLYPHS[((c * 7).div_ceil(max)) as usize % 8])
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = std::env::args()
        .nth(1)
        .map(|s| WorkloadKind::from_str(&s))
        .transpose()?
        .unwrap_or(WorkloadKind::Dlrm);

    let trace = kind.default_workload().generate(200_000, 3);
    let cfg = PreprocessConfig::default();
    let records = icgmm_trace::trim(&trace, &cfg);
    let stats = trace.stats();

    println!("== {kind} ==");
    println!(
        "requests {}  distinct pages {}  footprint {} MiB  writes {:.1}%",
        stats.requests,
        stats.distinct_pages,
        stats.footprint_bytes() / (1024 * 1024),
        stats.write_fraction() * 100.0
    );

    let spatial = SpatialHistogram::from_records(records, 64);
    println!("\nspatial distribution (accesses per page bucket — Fig. 2 left):");
    println!("  {}", sparkline(&spatial.counts));
    println!(
        "  modes: {}   top-8-bucket share: {:.2}",
        spatial.mode_count(),
        spatial.top_k_share(8)
    );

    let heat = TemporalHeatmap::from_records(records, &cfg, 12, 56);
    println!("\ntemporal heat map (page rows × time cols — Fig. 2 right):");
    for r in 0..heat.rows {
        let row: Vec<u64> = (0..heat.cols).map(|c| heat.at(r, c)).collect();
        println!("  {}", sparkline(&row));
    }
    println!(
        "  busiest-row temporal CV: {:.2} (>> 0 means uneven in time)",
        heat.busiest_row_cv()
    );

    let ws = working_set_series(records, &cfg);
    let head: Vec<u64> = ws.iter().take(56).map(|&n| n as u64).collect();
    println!("\nper-window working-set size (drift view):");
    println!("  {}", sparkline(&head));
    Ok(())
}
