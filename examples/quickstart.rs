//! Quickstart: train the ICGMM policy engine on a memtier-like trace and
//! compare it against LRU — the paper's core experiment in ~40 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use icgmm::benchmarks::BenchmarkSpec;
use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_gmm::EmConfig;
use icgmm_trace::synth::WorkloadKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a dlrm-like trace (embedding gathers over a footprint far
    //    larger than the cache — the paper's biggest win). In a real
    //    deployment this would come from the CXL trace collector.
    let spec = BenchmarkSpec::suite_with_requests(300_000)
        .into_iter()
        .find(|s| s.kind == WorkloadKind::Dlrm)
        .expect("dlrm is in the suite");
    let workload = spec.workload();
    let trace = workload.generate(spec.requests, spec.seed);
    let stats = trace.stats();
    println!(
        "trace: {} requests, {} distinct pages ({} MiB footprint), {:.1}% writes",
        stats.requests,
        stats.distinct_pages,
        stats.footprint_bytes() / (1024 * 1024),
        stats.write_fraction() * 100.0
    );

    // 2. Configure the system: the paper's 64 MiB / 4 KiB / 8-way cache,
    //    TLC SSD latencies, the benchmark's calibrated admission quantile,
    //    and a reduced K for a fast demo.
    let cfg = IcgmmConfig {
        em: EmConfig {
            k: 64,
            ..Default::default()
        },
        ..spec.config()
    };
    let mut system = Icgmm::new(cfg)?;

    // 3. Offline training (paper §3): trim → Algorithm 1 timestamps →
    //    weighted EM → threshold calibration.
    let fit = system.fit(&trace)?;
    println!(
        "trained: {} cells (from {} requests), EM {} iterations (converged: {}), threshold {:.3e}",
        fit.cells_trained, fit.records_used, fit.em.iterations, fit.em.converged, fit.threshold
    );

    // 4. Run the paper's four policies over the same trace.
    for mode in PolicyMode::fig6_modes() {
        let run = system.run(&trace, mode)?;
        println!(
            "{:>14}: miss {:5.2}%  avg access {:6.2} µs  (bypasses {}, dirty evictions {})",
            mode.to_string(),
            run.miss_rate_pct(),
            run.avg_us(),
            run.sim.stats.bypasses(),
            run.sim.stats.dirty_evictions,
        );
    }
    Ok(())
}
