//! Offline shim for `rand` 0.8.
//!
//! The container cannot reach crates.io, so this crate reimplements the
//! slice of the `rand` API the workspace actually uses — `Rng::gen`,
//! `Rng::gen_range` over integer ranges, `SeedableRng::seed_from_u64`,
//! `StdRng`/`SmallRng` and `seq::SliceRandom::shuffle` — on top of a
//! xoshiro256++ generator seeded through SplitMix64. Streams are
//! deterministic in the seed (all the repo's tests require) but are NOT
//! bit-compatible with the real `rand` crate, and none of this is
//! cryptographic.

/// A source of random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values drawable from the `Standard` distribution (full range for
/// integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias < 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                if s == 0 && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (e - s) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                s + hi as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}
signed_range!(isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws from the `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — fast, tiny, and statistically solid for simulation use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden point; splitmix64 cannot
        // produce four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The "standard" generator (here: xoshiro256++, not ChaCha12).
    pub type StdRng = super::Xoshiro256PlusPlus;
    /// The "small fast" generator (same algorithm in this shim).
    pub type SmallRng = super::Xoshiro256PlusPlus;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_single(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for _ in 0..1000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v: u64 = rng.gen_range(5..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn works_through_unsized_generic_plumbing() {
        fn takes_dynish<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let v = takes_dynish(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
