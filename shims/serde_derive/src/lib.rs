//! Offline shim for `serde_derive`.
//!
//! This container has no network access to crates.io, so the workspace
//! vendors a minimal stand-in: the derive macros parse nothing and emit
//! empty marker impls. The `serde(...)` helper attribute is accepted (and
//! ignored) so sources stay compatible with the real crate.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword, skipping
/// attributes and doc comments, so the emitted impl names the right type.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

/// Generics are out of scope for this shim: every derived type in the
/// workspace is concrete, so the impl is emitted for the bare name.
fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .expect("shim impl tokenizes"),
        None => TokenStream::new(),
    }
}

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Deserialize<'static>", input)
}
