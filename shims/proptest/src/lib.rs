//! Offline shim for `proptest`.
//!
//! The container cannot reach crates.io, so this crate implements the
//! slice of proptest the workspace's property tests use: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `any`,
//! numeric-range and tuple strategies, `prop::collection::vec`,
//! `Strategy::prop_map` and `sample::subsequence`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case index and RNG seed
//!   (every run is deterministic, so that is enough to reproduce).
//! * **Case count** defaults to 64 per property (128 in release builds
//!   would add little here); override with `ICGMM_PROPTEST_CASES` (the
//!   workspace-specific knob CI's deep differential pass sets, taking
//!   precedence) or the conventional `PROPTEST_CASES`. Tier-1
//!   `cargo test -q` stays bounded at the default; nightly-style passes
//!   crank the count without touching any test.

use rand::rngs::StdRng;

/// Strategy combinators and generation.
pub mod strategy {
    use super::TestRng;
    use rand::Rng as _;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(usize, u64, u32, u16, u8, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.gen::<u64>()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.gen::<u32>()
        }
    }

    /// Strategy returned by [`any`](super::any).
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// The RNG handed to strategies (deterministic per test case).
pub type TestRng = StdRng;

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len_range)`: vectors whose length lies in the range.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::seq::SliceRandom;
    use rand::Rng;

    /// Strategy producing order-preserving subsequences of `values`.
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: core::ops::Range<usize>,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.values.len();
            let lo = self.size.start.min(n);
            let hi = self.size.end.min(n + 1).max(lo + 1);
            let len = if lo + 1 >= hi {
                lo
            } else {
                rng.gen_range(lo..hi)
            };
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(rng);
            idx.truncate(len);
            idx.sort_unstable();
            idx.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }

    /// A subsequence of `values` whose length lies in `size`.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: core::ops::Range<usize>) -> Subsequence<T> {
        Subsequence { values, size }
    }
}

/// Test-runner plumbing used by the macros.
pub mod test_runner {
    use rand::SeedableRng;

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — not a failure.
        Reject(String),
        /// A `prop_assert!` failed.
        Fail(String),
    }

    /// Drives the per-property case loop.
    pub struct TestRunner {
        /// Cases to run per property.
        pub cases: u32,
        base_seed: u64,
    }

    /// The workspace knob wins over the conventional proptest one, so CI
    /// can deepen this repo's differential suites without perturbing any
    /// other proptest-using environment. Factored over a lookup closure
    /// so the precedence rule is testable without mutating process-global
    /// environment variables under parallel tests.
    pub(crate) fn cases_from(lookup: impl Fn(&str) -> Option<String>) -> u32 {
        ["ICGMM_PROPTEST_CASES", "PROPTEST_CASES"]
            .iter()
            .find_map(|k| lookup(k)?.parse().ok())
            .unwrap_or(64)
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner {
                cases: cases_from(|k| std::env::var(k).ok()),
                base_seed: 0x1C_6B1B_5EED,
            }
        }
    }

    impl TestRunner {
        /// A deterministic RNG for case number `case`.
        pub fn rng_for_case(&self, case: u32) -> super::TestRng {
            super::TestRng::seed_from_u64(
                self.base_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        }
    }
}

/// The catch-all import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// The `prop::` module alias used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::test_runner::TestRunner::default();
                for case in 0..runner.cases {
                    let mut prop_rng = runner.rng_for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)*
                    let result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property '{}' failed at case {} (deterministic; rerun reproduces): {}",
                                stringify!($name), case, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not
/// panicking) so the runner can report it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn case_count_env_precedence() {
        // Pure-function check over an injected lookup — no process-global
        // environment mutation, so parallel sibling tests are unaffected.
        let both = |k: &str| match k {
            "ICGMM_PROPTEST_CASES" => Some("7".to_string()),
            "PROPTEST_CASES" => Some("9".to_string()),
            _ => None,
        };
        assert_eq!(
            crate::test_runner::cases_from(both),
            7,
            "workspace knob must win"
        );
        let plain = |k: &str| (k == "PROPTEST_CASES").then(|| "9".to_string());
        assert_eq!(
            crate::test_runner::cases_from(plain),
            9,
            "conventional knob is the fallback"
        );
        assert_eq!(crate::test_runner::cases_from(|_| None), 64, "default");
        let garbage = |_: &str| Some("not-a-number".to_string());
        assert_eq!(
            crate::test_runner::cases_from(garbage),
            64,
            "unparseable values fall back to the default"
        );
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn map_and_tuple_compose(p in (0u64..10, any::<bool>()).prop_map(|(n, b)| if b { n } else { n + 10 })) {
            prop_assert!(p < 20);
        }

        #[test]
        fn subsequences_preserve_order(s in sample::subsequence((0..16u64).collect::<Vec<_>>(), 4..12)) {
            prop_assert!((4..12).contains(&s.len()));
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
