//! Offline shim for `serde`.
//!
//! The container cannot reach crates.io, so this crate provides just the
//! surface the workspace touches: the `Serialize`/`Deserialize` marker
//! traits and the derive macros (re-exported from the sibling no-op
//! `serde_derive` shim). No actual serialization is performed anywhere in
//! the repo — persistence uses a hand-rolled text format in
//! `icgmm::persist` — so marker impls are sufficient.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
