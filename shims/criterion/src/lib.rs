//! Offline shim for `criterion`.
//!
//! The container cannot reach crates.io, so this crate implements a small
//! wall-clock benchmarking harness behind the criterion API surface used
//! by `crates/bench`: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `Bencher::iter` and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology: each benchmark is auto-calibrated so one sample runs for
//! roughly 5 ms, then `sample_size` samples are collected (capped so a
//! single benchmark stays under ~3 s) and the minimum / median / maximum
//! per-iteration times are reported. No plots, no statistics beyond that —
//! enough to compare kernels and track regressions in CI logs.
//!
//! ## Machine-readable output
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! benchmark additionally appends one JSON line to it:
//!
//! ```json
//! {"id":"group/bench","median_ns":123.4,"min_ns":120.0,"max_ns":130.9,
//!  "samples":20,"iters_per_sample":4096}
//! ```
//!
//! CI consumes these lines to archive per-PR perf artifacts
//! (`BENCH_*.json`) and to run same-runner relative perf gates (the
//! `perf_gate` binary in `icgmm-bench`), instead of scraping log text.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Measurement markers (only wall-clock exists in this shim).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_target: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, recording per-sample wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one sample takes ~5 ms.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(5) || iters >= 1 << 24 {
                // The calibration run doubles as the first sample.
                self.iters_per_sample = iters;
                self.samples.push(dt);
                break;
            }
            iters = iters.saturating_mul(if dt < Duration::from_micros(50) { 8 } else { 2 });
        }
        // Collect the remaining samples within a ~3 s budget.
        let budget = Instant::now();
        for _ in 1..self.sample_target {
            if budget.elapsed() > Duration::from_secs(3) {
                break;
            }
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

/// Harness configuration (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _measurement: std::marker::PhantomData,
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(id, sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _measurement: std::marker::PhantomData<&'a M>,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Per-group sample-count override.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks `f` with an input under `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is per-benchmark; nothing buffered).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
        sample_target: sample_size as u64,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
    let lo = per_iter[0];
    let med = per_iter[per_iter.len() / 2];
    let hi = per_iter[per_iter.len() - 1];
    print!(
        "{id:<48} time: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(med),
        fmt_ns(hi)
    );
    if let Some(Throughput::Elements(n)) = tp {
        let per_sec = n as f64 * 1e9 / med;
        print!("  thrpt: {:.3} Melem/s", per_sec / 1e6);
    }
    if let Some(Throughput::Bytes(n)) = tp {
        let per_sec = n as f64 * 1e9 / med;
        print!("  thrpt: {:.1} MiB/s", per_sec / (1024.0 * 1024.0));
    }
    println!();
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            append_json_line(&path, id, med, lo, hi, per_iter.len(), b.iters_per_sample);
        }
    }
}

/// Appends one benchmark record as a JSON line (failures are reported on
/// stderr, never fatal — a perf run must not die on a full disk).
fn append_json_line(
    path: &str,
    id: &str,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
) {
    use std::io::Write as _;
    let line = format!(
        "{{\"id\":{},\"median_ns\":{median_ns:.3},\"min_ns\":{min_ns:.3},\"max_ns\":{max_ns:.3},\"samples\":{samples},\"iters_per_sample\":{iters_per_sample}}}\n",
        json_string(id)
    );
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("criterion shim: cannot append to {path}: {e}");
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group runner function, mirroring criterion's two
/// macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f64", 256).id, "f64/256");
    }

    #[test]
    fn json_lines_are_appended_when_env_is_set() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-json-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_JSON", &path);
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("json_smoke/sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        std::env::remove_var("CRITERION_JSON");
        let content = std::fs::read_to_string(&path).expect("json file written");
        let line = content
            .lines()
            .find(|l| l.contains("\"id\":\"json_smoke/sum\""))
            .expect("benchmark line present");
        assert!(line.contains("\"median_ns\":"), "{line}");
        assert!(line.contains("\"iters_per_sample\":"), "{line}");
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("a/b"), "\"a/b\"");
        assert_eq!(json_string("q\"x\\y"), "\"q\\\"x\\\\y\"");
        assert_eq!(json_string("t\tb"), "\"t\\u0009b\"");
    }
}
