//! Offline shim for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are used by the
//! workspace (the parallel EM E-step, batch scoring and the experiment
//! suite runner). Since Rust 1.63 the standard library has scoped threads,
//! so this shim is a thin adapter that reproduces crossbeam's call shape —
//! `scope(|s| ...)` returning a `Result`, and spawn closures receiving a
//! `&Scope` argument — over `std::thread::scope`.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope (matches `std::thread::Result`).
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to a scope in which threads can be spawned (wraps
    /// [`std::thread::Scope`]).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (Err on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope itself so workers could spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// caller's stack. Unlike crossbeam, a panic in an unjoined worker
    /// propagates as a panic rather than an `Err` (every call site in this
    /// workspace joins its handles, so the difference is unobservable).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawn_join_borrows_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn worker_panic_surfaces_through_join() {
        crate::thread::scope(|scope| {
            let h = scope.spawn(|_| -> () { panic!("boom") });
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
