//! Offline shim for `crossbeam`.
//!
//! Two surfaces are used by the workspace: `crossbeam::thread::scope` /
//! `Scope::spawn` (the parallel EM E-step, batch scoring, the sharded
//! replay workers and the serving front-end) and `crossbeam::channel`
//! bounded queues (the serving ingestion/outcome paths). Since Rust 1.63
//! the standard library has scoped threads, so the thread half is a thin
//! adapter reproducing crossbeam's call shape — `scope(|s| ...)` returning
//! a `Result`, and spawn closures receiving a `&Scope` argument — over
//! `std::thread::scope`. The channel half is a bounded MPMC queue over
//! `std::sync::{Mutex, Condvar}` with crossbeam's disconnect semantics.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope (matches `std::thread::Result`).
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to a scope in which threads can be spawned (wraps
    /// [`std::thread::Scope`]).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (Err on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope itself so workers could spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// caller's stack. Unlike crossbeam, a panic in an unjoined worker
    /// propagates as a panic rather than an `Err` (every call site in this
    /// workspace joins its handles, so the difference is unobservable).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Bounded MPMC channel API mirroring `crossbeam::channel`.
///
/// Semantics match crossbeam where the workspace relies on them:
/// `send` blocks while the queue is full and fails only once every
/// receiver is gone; `recv` blocks while the queue is empty and keeps
/// draining buffered messages after the last sender disconnects,
/// erroring only when the queue is empty *and* no sender remains.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
        /// Receivers parked in `recv` waiting on `not_empty`. Senders only
        /// notify when this is non-zero: `pthread_cond_signal` costs a few
        /// hundred ns on this class of kernel even with nobody waiting,
        /// which would dominate the per-message budget of a steady-state
        /// pipeline that never parks. The count is mutated under the same
        /// mutex that guards the queue (incremented before the wait
        /// atomically releases the lock), so a skipped notify can never
        /// race a concurrent parker.
        waiting_recv: usize,
        /// Senders parked in `send` waiting on `not_full` (same contract).
        waiting_send: usize,
    }

    struct Inner<T> {
        shared: Mutex<Shared<T>>,
        /// Signalled when space frees up or all receivers disconnect.
        not_full: Condvar,
        /// Signalled when a message arrives or all senders disconnect.
        not_empty: Condvar,
        /// Rounds of `yield_now` a blocking operation on this channel
        /// spends polling before parking (see [`SPIN_YIELDS`]).
        spins: usize,
    }

    /// Error returned by [`Sender::send`]: every receiver disconnected.
    /// The unsent message is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity; the message is handed back.
        Full(T),
        /// Every receiver disconnected; the message is handed back.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`]: the queue is empty and every
    /// sender disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty but senders remain.
        Empty,
        /// The queue is empty and every sender disconnected.
        Disconnected,
    }

    /// Default rounds of `yield_now` a blocking operation spends polling
    /// before parking on the condvar. The right budget depends on the
    /// message granularity, so it is per-channel
    /// ([`bounded_with_spin`]): fine-grained hand-off (one record per
    /// message, the sharded replay engine's shape) wants a generous
    /// budget — a park/wake round-trip per message would serialise the
    /// pipeline into a context switch per record — while batched
    /// transport (64 records per message) amortises the park and is
    /// instead hurt by long spins on few-core hosts, where several idle
    /// consumers yielding in lock-step starve the one runnable producer.
    const SPIN_YIELDS: usize = 1024;

    /// Sending half of a bounded channel. Cloning adds a sender.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of a bounded channel. Cloning adds a receiver.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages.
    /// Zero-capacity rendezvous channels are not supported by the shim.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        bounded_with_spin(cap, SPIN_YIELDS)
    }

    /// [`bounded`] with an explicit spin budget (shim extension, not a
    /// crossbeam API): rounds of `yield_now` a blocking `send`/`recv` on
    /// this channel polls before parking. Batched transports pass a
    /// small budget (the park is amortised over the whole message and
    /// long spins starve few-core producers); fine-grained transports
    /// keep the generous default.
    pub fn bounded_with_spin<T>(cap: usize, spins: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "shim bounded channel requires capacity >= 1");
        let inner = Arc::new(Inner {
            shared: Mutex::new(Shared {
                queue: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
                waiting_recv: 0,
                waiting_send: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            spins,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or until every receiver
        /// has disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut msg = msg;
            for _ in 0..self.inner.spins {
                match self.try_send(msg) {
                    Ok(()) => return Ok(()),
                    Err(TrySendError::Disconnected(m)) => return Err(SendError(m)),
                    Err(TrySendError::Full(m)) => {
                        msg = m;
                        std::thread::yield_now();
                    }
                }
            }
            let mut shared = self.inner.shared.lock().unwrap();
            loop {
                if shared.receivers == 0 {
                    return Err(SendError(msg));
                }
                if shared.queue.len() < shared.cap {
                    shared.queue.push_back(msg);
                    let notify = shared.waiting_recv > 0;
                    drop(shared);
                    if notify {
                        self.inner.not_empty.notify_one();
                    }
                    return Ok(());
                }
                shared.waiting_send += 1;
                shared = self.inner.not_full.wait(shared).unwrap();
                shared.waiting_send -= 1;
            }
        }

        /// Enqueues without blocking, reporting a full queue to the caller.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut shared = self.inner.shared.lock().unwrap();
            if shared.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if shared.queue.len() >= shared.cap {
                return Err(TrySendError::Full(msg));
            }
            shared.queue.push_back(msg);
            let notify = shared.waiting_recv > 0;
            drop(shared);
            if notify {
                self.inner.not_empty.notify_one();
            }
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.shared.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut shared = self.inner.shared.lock().unwrap();
                shared.senders -= 1;
                shared.senders
            };
            if remaining == 0 {
                // Wake receivers parked in recv so they can observe the
                // disconnect once the buffer drains.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Buffered messages are still
        /// delivered after the last sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            for _ in 0..self.inner.spins {
                match self.try_recv() {
                    Ok(msg) => return Ok(msg),
                    Err(TryRecvError::Disconnected) => return Err(RecvError),
                    Err(TryRecvError::Empty) => std::thread::yield_now(),
                }
            }
            let mut shared = self.inner.shared.lock().unwrap();
            loop {
                if let Some(msg) = shared.queue.pop_front() {
                    let notify = shared.waiting_send > 0;
                    drop(shared);
                    if notify {
                        self.inner.not_full.notify_one();
                    }
                    return Ok(msg);
                }
                if shared.senders == 0 {
                    return Err(RecvError);
                }
                shared.waiting_recv += 1;
                shared = self.inner.not_empty.wait(shared).unwrap();
                shared.waiting_recv -= 1;
            }
        }

        /// Dequeues without blocking, distinguishing empty from closed.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut shared = self.inner.shared.lock().unwrap();
            if let Some(msg) = shared.queue.pop_front() {
                let notify = shared.waiting_send > 0;
                drop(shared);
                if notify {
                    self.inner.not_full.notify_one();
                }
                return Ok(msg);
            }
            if shared.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.shared.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut shared = self.inner.shared.lock().unwrap();
                shared.receivers -= 1;
                shared.receivers
            };
            if remaining == 0 {
                // Wake senders parked in send so they can observe the
                // disconnect instead of blocking forever.
                self.inner.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError, TryRecvError, TrySendError};

    #[test]
    fn bounded_fifo_order_preserved() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_send_reports_full_then_succeeds_after_drain() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(2).unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_drains_buffer_after_all_senders_drop() {
        let (tx, rx) = bounded(2);
        tx.send(7).unwrap();
        tx.send(8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Ok(8));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_errors_once_receiver_disconnects() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn blocked_sender_unblocks_when_space_frees() {
        let (tx, rx) = bounded(1);
        tx.send(0u64).unwrap();
        crate::thread::scope(|scope| {
            let h = scope.spawn(|_| tx.send(1u64));
            // The spawned send blocks on the full queue until this drain.
            assert_eq!(rx.recv(), Ok(0));
            h.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Ok(1));
        })
        .unwrap();
    }

    #[test]
    fn blocked_receiver_unblocks_on_send_across_threads() {
        let (tx, rx) = bounded(2);
        let total: u64 = crate::thread::scope(|scope| {
            let producers: Vec<_> = (0..4u64)
                .map(|i| {
                    let tx = tx.clone();
                    scope.spawn(move |_| {
                        for j in 0..16u64 {
                            tx.send(i * 16 + j).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            for p in producers {
                p.join().unwrap();
            }
            sum
        })
        .unwrap();
        assert_eq!(total, (0..64u64).sum());
    }

    #[test]
    fn scope_spawn_join_borrows_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn worker_panic_surfaces_through_join() {
        crate::thread::scope(|scope| {
            let h = scope.spawn(|_| -> () { panic!("boom") });
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
