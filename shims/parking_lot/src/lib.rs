//! Offline shim for `parking_lot`.
//!
//! Provides the non-poisoning `Mutex` API the workspace uses (`lock`
//! returning a guard directly, `into_inner`) on top of `std::sync::Mutex`.
//! Poisoning is erased by unwrapping into the inner value — consistent
//! with parking_lot semantics, where a panicked holder simply releases the
//! lock.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![0u32; 3]);
        m.lock()[1] = 7;
        assert_eq!(m.into_inner(), vec![0, 7, 0]);
    }
}
