//! Workspace-level umbrella crate for the ICGMM reproduction.
//!
//! This crate exists to host the repository-root `examples/` and `tests/`
//! directories; the actual functionality lives in the `icgmm*` crates under
//! `crates/`. Downstream users should depend on [`icgmm`] directly.

pub use icgmm;
pub use icgmm_cache;
pub use icgmm_gmm;
pub use icgmm_hw;
pub use icgmm_lstm;
pub use icgmm_trace;
